// Command faultsim runs fault-injection campaigns against the
// transparent word-oriented tests:
//
//	faultsim -test "March C-" -width 4 -words 4
//	faultsim -test "March U" -width 8 -words 3 -classes CFid,CFin -scope intra
//	faultsim -mode signature -width 16
//
// Every enumerated fault is injected into a fresh memory with
// pseudo-random contents; the report shows per-class coverage of the
// generated TWMarch and, for comparison, of the Scheme 1 baseline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"twmarch/internal/core"
	"twmarch/internal/faults"
	"twmarch/internal/faultsim"
	"twmarch/internal/march"
	"twmarch/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	testName := fs.String("test", "March C-", "catalog test name")
	width := fs.Int("width", 4, "word width (power of two)")
	words := fs.Int("words", 4, "memory words")
	classes := fs.String("classes", "SAF,TF,CFst,CFid,CFin", "fault classes to enumerate (also: AF, Linked)")
	scope := fs.String("scope", "all", "coupling pair scope: all, intra, inter")
	mode := fs.String("mode", "compare", "detection mode: compare or signature")
	seed := fs.Int64("seed", 1, "initial-contents seed")
	baseline := fs.Bool("baseline", true, "also run the Scheme 1 baseline")
	characterize := fs.Bool("characterize", false, "print the catalog-wide coverage matrix and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *characterize {
		return characterizeCatalog(out, *words)
	}

	bm, err := march.Lookup(*testName)
	if err != nil {
		return err
	}
	list, err := buildList(*classes, *scope, *words, *width)
	if err != nil {
		return err
	}
	dm := faultsim.DirectCompare
	if *mode == "signature" {
		dm = faultsim.Signature
	} else if *mode != "compare" {
		return fmt.Errorf("unknown mode %q", *mode)
	}

	res, err := core.TWMTA(bm, *width)
	if err != nil {
		return err
	}
	tb := &report.Table{
		Title: fmt.Sprintf("fault coverage: %d faults on %dx%d memory, mode %s, seed %d",
			len(list), *words, *width, dm, *seed),
		Header: []string{"test", "class", "detected", "total", "coverage"},
	}
	if err := campaign(tb, "TWMarch", res.TWMarch, dm, *words, *width, *seed, list); err != nil {
		return err
	}
	if *baseline {
		s1, err := core.Scheme1(bm, *width)
		if err != nil {
			return err
		}
		if err := campaign(tb, "Scheme 1", s1.Test, dm, *words, *width, *seed, list); err != nil {
			return err
		}
	}
	_, err = io.WriteString(out, tb.Render())
	return err
}

// characterizeCatalog prints the coverage matrix of every catalog test
// against every fault class — the library's reproduction of the
// classical march-test comparison tables.
func characterizeCatalog(out io.Writer, words int) error {
	var names []string
	for _, e := range march.Catalog() {
		names = append(names, e.Name)
	}
	ch, err := faultsim.Characterize(names, words)
	if err != nil {
		return err
	}
	tb := &report.Table{
		Title:  fmt.Sprintf("march test characterization on a %d-cell bit-oriented memory (coverage %%)", words),
		Header: append([]string{"test"}, ch.Classes...),
	}
	for i, name := range ch.Tests {
		row := []string{name}
		for j := range ch.Classes {
			row = append(row, fmt.Sprintf("%.0f", 100*ch.Coverage[i][j]))
		}
		tb.AddRow(row...)
	}
	_, err = io.WriteString(out, tb.Render())
	return err
}

func campaign(tb *report.Table, label string, t *march.Test, mode faultsim.DetectMode, words, width int, seed int64, list []faults.Fault) error {
	c := faultsim.Campaign{Test: t, Words: words, Width: width, Mode: mode, Seed: seed}
	rep, err := faultsim.Run(c, list)
	if err != nil {
		return err
	}
	for _, cls := range rep.Classes() {
		s := rep.ByClass[cls]
		tb.AddRow(label, cls, fmt.Sprintf("%d", s.Detected), fmt.Sprintf("%d", s.Total),
			fmt.Sprintf("%.2f%%", 100*s.Coverage()))
	}
	tb.AddRow(label, "TOTAL", fmt.Sprintf("%d", rep.Detected), fmt.Sprintf("%d", rep.Total),
		fmt.Sprintf("%.2f%%", 100*rep.Coverage()))
	return nil
}

func buildList(classes, scope string, words, width int) ([]faults.Fault, error) {
	var ps faults.PairScope
	switch scope {
	case "all":
		ps = faults.AllPairs
	case "intra":
		ps = faults.IntraWordPairs
	case "inter":
		ps = faults.InterWordPairs
	default:
		return nil, fmt.Errorf("unknown scope %q", scope)
	}
	var out []faults.Fault
	for _, c := range strings.Split(classes, ",") {
		switch strings.TrimSpace(c) {
		case "SAF":
			out = append(out, faults.EnumerateStuckAt(words, width)...)
		case "TF":
			out = append(out, faults.EnumerateTransition(words, width)...)
		case "CFst":
			out = append(out, faults.EnumerateCFst(words, width, ps)...)
		case "CFid":
			out = append(out, faults.EnumerateCFid(words, width, ps)...)
		case "CFin":
			out = append(out, faults.EnumerateCFin(words, width, ps)...)
		case "AF":
			out = append(out, faults.EnumerateAddrFaults(words)...)
		case "Linked":
			out = append(out, faults.EnumerateLinkedCFid(words, width)...)
		case "":
		default:
			return nil, fmt.Errorf("unknown fault class %q", c)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty fault list")
	}
	return out, nil
}
