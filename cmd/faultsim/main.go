// Command faultsim runs fault-injection campaigns against the
// transparent word-oriented tests:
//
//	faultsim -test "March C-" -width 4 -words 4
//	faultsim -test "March U" -width 8 -words 3 -classes CFid,CFin -scope intra
//	faultsim -mode signature -width 16
//
// Every enumerated fault is injected into a memory with pseudo-random
// contents; the report shows per-class coverage of the generated
// TWMarch and, for comparison, of the Scheme 1 baseline. Simulation
// rides the bit-parallel lane path by default (the fault-free march is
// captured once and up to 64 faults replay against it per pass);
// -lanes=false drops to the scalar one-fault-per-replay reference, and
// -naive to the one-shot per-fault loop — results are identical on all
// three paths.
//
// With -grid the single simulation becomes a campaign: the comma lists
// in -tests, -widths and -sizes span a grid that is fanned out over the
// internal/campaign worker-pool engine (the same engine cmd/twmd
// serves over HTTP):
//
//	faultsim -grid -tests "March C-,March U" -widths 4,8 -sizes 3,4
//
// With -progress the grid reports live completion to stderr over the
// engine's result event stream — cells done, rate, and ETA — while
// stdout stays reserved for the report:
//
//	faultsim -grid -tests "March C-,March U" -sizes 16,64 -progress
//
// With -pipeline the grid additionally runs the diagnosis-and-repair
// stage per fault: mismatch syndromes are diagnosed, suspect sites
// mapped onto spare rows/columns, and test escapes classified against
// a field-ECC model; the aggregate gains a yield section:
//
//	faultsim -grid -pipeline -spare-rows 1 -spare-cols 1 -ecc secded
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/core"
	"twmarch/internal/faults"
	"twmarch/internal/faultsim"
	"twmarch/internal/march"
	"twmarch/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	testName := fs.String("test", "March C-", "catalog test name")
	width := fs.Int("width", 4, "word width (power of two)")
	words := fs.Int("words", 4, "memory words")
	classes := fs.String("classes", "SAF,TF,CFst,CFid,CFin", "fault classes to enumerate (also: AF, Linked)")
	scope := fs.String("scope", "all", "coupling pair scope: all, intra, inter")
	mode := fs.String("mode", "compare", "detection mode: compare or signature")
	seed := fs.Int64("seed", 1, "initial-contents seed")
	naive := fs.Bool("naive", false, "debugging escape hatch: use the naive per-fault simulation path instead of the reference-trace fast path (identical results; zeroed in the canonical JSON aggregate)")
	lanes := fs.Bool("lanes", true, "use the bit-parallel 64-lane replay; -lanes=false pins the scalar per-fault reference (identical results; zeroed in the canonical JSON aggregate)")
	baseline := fs.Bool("baseline", true, "also run the Scheme 1 baseline")
	characterize := fs.Bool("characterize", false, "print the catalog-wide coverage matrix and exit")
	grid := fs.Bool("grid", false, "run a campaign grid on the internal/campaign engine")
	tests := fs.String("tests", "", "with -grid: comma-separated catalog tests (default: -test)")
	widths := fs.String("widths", "", "with -grid: comma-separated word widths (default: -width)")
	sizes := fs.String("sizes", "", "with -grid: comma-separated memory sizes in words (default: -words)")
	workers := fs.Int("workers", 0, "with -grid: worker-pool size (0 = GOMAXPROCS)")
	asJSON := fs.Bool("json", false, "with -grid: print the canonical JSON aggregate instead of tables")
	progress := fs.Bool("progress", false, "with -grid: report live completion, rate and ETA to stderr")
	pipeline := fs.Bool("pipeline", false, "with -grid: run the diagnosis-and-repair yield pipeline per fault")
	spareRows := fs.Int("spare-rows", 1, "with -pipeline: spare word lines per memory")
	spareCols := fs.Int("spare-cols", 1, "with -pipeline: spare bit lines per memory")
	eccModel := fs.String("ecc", "none", "with -pipeline: field ECC model for escapes: none, sec, secded")
	maxSyndrome := fs.Int("max-syndrome", 0, "with -pipeline: diagnostic mismatch-log cap (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *characterize {
		return characterizeCatalog(out, *words)
	}

	if *grid {
		var ps *campaign.PipelineSpec
		if *pipeline {
			ps = &campaign.PipelineSpec{
				Enabled:     true,
				SpareRows:   *spareRows,
				SpareCols:   *spareCols,
				ECC:         *eccModel,
				MaxSyndrome: *maxSyndrome,
			}
		}
		return runGrid(out, errOut, gridFlags{
			tests: orDefault(*tests, *testName), widths: orDefault(*widths, strconv.Itoa(*width)),
			sizes: orDefault(*sizes, strconv.Itoa(*words)), classes: *classes, scope: *scope,
			mode: *mode, seed: *seed, baseline: *baseline, workers: *workers, asJSON: *asJSON,
			naive: *naive, noLanes: !*lanes, pipeline: ps, progress: *progress,
		})
	}

	bm, err := march.Lookup(*testName)
	if err != nil {
		return err
	}
	list, err := buildList(*classes, *scope, *words, *width)
	if err != nil {
		return err
	}
	dm := faultsim.DirectCompare
	if *mode == "signature" {
		dm = faultsim.Signature
	} else if *mode != "compare" {
		return fmt.Errorf("unknown mode %q", *mode)
	}

	res, err := core.TWMTA(bm, *width)
	if err != nil {
		return err
	}
	tb := &report.Table{
		Title: fmt.Sprintf("fault coverage: %d faults on %dx%d memory, mode %s, seed %d",
			len(list), *words, *width, dm, *seed),
		Header: []string{"test", "class", "detected", "total", "coverage"},
	}
	if err := coverageRows(tb, "TWMarch", res.TWMarch, dm, *words, *width, *seed, *naive, !*lanes, list); err != nil {
		return err
	}
	if *baseline {
		s1, err := core.Scheme1(bm, *width)
		if err != nil {
			return err
		}
		if err := coverageRows(tb, "Scheme 1", s1.Test, dm, *words, *width, *seed, *naive, !*lanes, list); err != nil {
			return err
		}
	}
	_, err = io.WriteString(out, tb.Render())
	return err
}

// characterizeCatalog prints the coverage matrix of every catalog test
// against every fault class — the library's reproduction of the
// classical march-test comparison tables.
func characterizeCatalog(out io.Writer, words int) error {
	var names []string
	for _, e := range march.Catalog() {
		names = append(names, e.Name)
	}
	ch, err := faultsim.Characterize(names, words)
	if err != nil {
		return err
	}
	tb := &report.Table{
		Title:  fmt.Sprintf("march test characterization on a %d-cell bit-oriented memory (coverage %%)", words),
		Header: append([]string{"test"}, ch.Classes...),
	}
	for i, name := range ch.Tests {
		row := []string{name}
		for j := range ch.Classes {
			row = append(row, fmt.Sprintf("%.0f", 100*ch.Coverage[i][j]))
		}
		tb.AddRow(row...)
	}
	_, err = io.WriteString(out, tb.Render())
	return err
}

func coverageRows(tb *report.Table, label string, t *march.Test, mode faultsim.DetectMode, words, width int, seed int64, naive, noLanes bool, list []faults.Fault) error {
	c := faultsim.Campaign{Test: t, Words: words, Width: width, Mode: mode, Seed: seed, Naive: naive, NoLanes: noLanes}
	rep, err := faultsim.Run(c, list)
	if err != nil {
		return err
	}
	for _, cls := range rep.Classes() {
		s := rep.ByClass[cls]
		tb.AddRow(label, cls, fmt.Sprintf("%d", s.Detected), fmt.Sprintf("%d", s.Total),
			fmt.Sprintf("%.2f%%", 100*s.Coverage()))
	}
	tb.AddRow(label, "TOTAL", fmt.Sprintf("%d", rep.Detected), fmt.Sprintf("%d", rep.Total),
		fmt.Sprintf("%.2f%%", 100*rep.Coverage()))
	return nil
}

// buildList delegates fault enumeration to the campaign package so the
// single-run and grid paths agree on class names and scopes.
func buildList(classes, scope string, words, width int) ([]faults.Fault, error) {
	ps, err := campaign.PairScope(scope)
	if err != nil {
		return nil, err
	}
	return campaign.FaultList(splitList(classes), ps, words, width)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func orDefault(v, def string) string {
	if strings.TrimSpace(v) == "" {
		return def
	}
	return v
}

// gridFlags carries the parsed -grid flag set to runGrid.
type gridFlags struct {
	tests, widths, sizes string
	classes, scope, mode string
	seed                 int64
	baseline             bool
	workers              int
	asJSON               bool
	naive                bool
	noLanes              bool
	pipeline             *campaign.PipelineSpec
	progress             bool
}

// runGrid expands the comma lists into a campaign.Spec and hands it to
// the shared worker-pool engine.
func runGrid(out, errOut io.Writer, f gridFlags) error {
	widths, err := intList(f.widths)
	if err != nil {
		return fmt.Errorf("-widths: %v", err)
	}
	sizes, err := intList(f.sizes)
	if err != nil {
		return fmt.Errorf("-sizes: %v", err)
	}
	classes := splitList(f.classes)
	if len(classes) == 0 {
		return fmt.Errorf("empty fault class list")
	}
	schemes := []string{campaign.SchemeTWM}
	if f.baseline {
		schemes = append(schemes, campaign.SchemeOne)
	}
	// Mode names match the campaign package's ("compare", "signature");
	// Spec.Validate rejects anything else.
	spec := campaign.Spec{
		Name:     "faultsim grid",
		Tests:    splitList(f.tests),
		Widths:   widths,
		Words:    sizes,
		Schemes:  schemes,
		Modes:    []string{f.mode},
		Classes:  classes,
		Scope:    f.scope,
		Seed:     f.seed,
		Workers:  f.workers,
		Naive:    f.naive,
		NoLanes:  f.noLanes,
		Pipeline: f.pipeline,
	}
	prog := &campaign.Progress{}
	var sinks []campaign.Sink
	if f.progress {
		sinks = append(sinks, newProgressPrinter(prog, errOut))
	}
	agg, err := campaign.Engine{}.Stream(context.Background(), spec, prog, nil, sinks...)
	if err != nil {
		return err
	}
	return campaign.WriteAggregate(out, agg, f.asJSON)
}

// progressPrinter is the -progress sink: it rides the engine's result
// event stream and prints a throttled completion line per update —
// cells done, rate, ETA — plus an unconditional final line.
type progressPrinter struct {
	mu   sync.Mutex
	prog *campaign.Progress
	out  io.Writer
	last time.Time
}

func newProgressPrinter(prog *campaign.Progress, out io.Writer) *progressPrinter {
	return &progressPrinter{prog: prog, out: out}
}

// Emit implements campaign.Sink. The engine serializes calls; the
// mutex only guards against a final Emit racing a throttled one.
func (p *progressPrinter) Emit(campaign.CellResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	done, total := p.prog.Done(), p.prog.Total()
	if done < total && time.Since(p.last) < 500*time.Millisecond {
		return
	}
	p.last = time.Now()
	line := fmt.Sprintf("progress: %d/%d cells (%.1f%%), %.1f cells/s",
		done, total, 100*p.prog.Fraction(), p.prog.Rate())
	if eta := p.prog.ETA(); eta > 0 {
		line += fmt.Sprintf(", eta %s", eta.Round(100*time.Millisecond))
	}
	fmt.Fprintln(p.out, line)
}

func intList(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
