package main

import (
	"strconv"
	"strings"
	"testing"
)

func render(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestOnlineSimOutput(t *testing.T) {
	out := render(t, "-words", "32", "-runs", "5", "-mean", "2")
	for _, want := range []string{"this work", "Scheme 1 [12]", "interference", "completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestProposedSessionShorter(t *testing.T) {
	out := render(t, "-words", "16", "-runs", "3", "-mean", "3")
	var sessions []int
	for _, l := range strings.Split(out, "\n") {
		var rest string
		switch {
		case strings.HasPrefix(l, "this work"):
			rest = strings.TrimPrefix(l, "this work")
		case strings.HasPrefix(l, "Scheme 1 [12]"):
			rest = strings.TrimPrefix(l, "Scheme 1 [12]")
		default:
			continue
		}
		// Session ops is the first numeric field after the name.
		for _, tok := range strings.Fields(rest) {
			if v, err := strconv.Atoi(tok); err == nil {
				sessions = append(sessions, v)
				break
			}
		}
	}
	if len(sessions) != 2 {
		t.Fatalf("could not parse session ops from:\n%s", out)
	}
	if sessions[0] >= sessions[1] {
		t.Errorf("proposed session %d not shorter than Scheme 1 %d", sessions[0], sessions[1])
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-test", "March Z"}, &b); err == nil {
		t.Error("unknown test accepted")
	}
	if err := run([]string{"-width", "12"}, &b); err == nil {
		t.Error("bad width accepted")
	}
	if err := run([]string{"-mean", "-1"}, &b); err == nil {
		t.Error("negative mean accepted")
	}
}
