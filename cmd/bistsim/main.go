// Command bistsim simulates periodic transparent BIST in the idle
// windows of a running system — the deployment the paper motivates:
//
//	bistsim -test "March C-" -width 32 -words 256 -mean 1.5 -runs 50
//
// It reports, for the proposed scheme and the Scheme 1 baseline, how
// many sessions completed, how often normal operation preempted a
// session, and how much work the preempted sessions wasted. Shorter
// tests collide less with the system — the quantified version of the
// paper's motivation.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"twmarch/internal/bistctl"
	"twmarch/internal/core"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bistsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bistsim", flag.ContinueOnError)
	testName := fs.String("test", "March C-", "catalog test name")
	width := fs.Int("width", 32, "word width (power of two)")
	words := fs.Int("words", 256, "memory words")
	mean := fs.Float64("mean", 1.5, "mean idle-window length as a multiple of the proposed scheme's session")
	runs := fs.Int("runs", 50, "completed sessions to simulate per scheme")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mean <= 0 {
		return fmt.Errorf("mean multiple %v must be positive", *mean)
	}

	bm, err := march.Lookup(*testName)
	if err != nil {
		return err
	}
	p, err := core.TWMTA(bm, *width)
	if err != nil {
		return err
	}
	s1, err := core.Scheme1(bm, *width)
	if err != nil {
		return err
	}

	ctlP, err := bistctl.New(p.TWMarch)
	if err != nil {
		return err
	}
	ctlS1, err := bistctl.New(s1.Test)
	if err != nil {
		return err
	}
	// One common absolute idle-window distribution for both schemes.
	meanOps := *mean * float64(ctlP.SessionOps()**words)

	tb := &report.Table{
		Title: fmt.Sprintf("online transparent BIST: %s on %dx%d, mean idle window %.0f ops, %d sessions",
			bm.Name, *words, *width, meanOps, *runs),
		Header: []string{"scheme", "session ops", "completed", "preempted", "interference", "wasted ops"},
	}
	for _, sc := range []struct {
		name string
		ctl  *bistctl.Controller
	}{
		{"this work", ctlP},
		{"Scheme 1 [12]", ctlS1},
	} {
		mem := memory.MustNew(*words, *width)
		mem.Randomize(rand.New(rand.NewSource(*seed)))
		win := &bistctl.GeometricWindows{Mean: meanOps, Rng: rand.New(rand.NewSource(*seed + 1))}
		stats, err := bistctl.SimulateOnline(sc.ctl, mem, win, *runs)
		if err != nil {
			return err
		}
		if !stats.AllPassed {
			return fmt.Errorf("%s: a session failed on a fault-free memory", sc.name)
		}
		tb.AddRow(sc.name,
			fmt.Sprintf("%d", sc.ctl.SessionOps()**words),
			fmt.Sprintf("%d", stats.CompletedRuns),
			fmt.Sprintf("%d", stats.Preemptions),
			fmt.Sprintf("%.1f%%", 100*stats.InterferenceProb()),
			fmt.Sprintf("%d", stats.WastedOps),
		)
	}
	_, err = io.WriteString(out, tb.Render())
	return err
}
