package main

import (
	"strings"
	"testing"
)

func render(t *testing.T, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return b.String()
}

func TestDefaultTransform(t *testing.T) {
	out := render(t)
	for _, want := range []string{
		"source (March C-, M=10, Q=5)",
		"TSMarch", "ATMarch", "TWMarch", "signature prediction",
		"This work", "35N",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestMarchUWidth8MatchesPaper(t *testing.T) {
	out := render(t, "-test", "March U", "-width", "8")
	if !strings.Contains(out, "29N") {
		t.Errorf("March U at W=8 should show the paper's 29N:\n%s", out)
	}
}

func TestCustomNotation(t *testing.T) {
	out := render(t, "-notation", "{any(w0); up(r0,w1); down(r1,w0); any(r0)}", "-width", "8")
	if !strings.Contains(out, "source (custom") {
		t.Errorf("custom notation not used:\n%s", out)
	}
}

func TestArrowOutput(t *testing.T) {
	out := render(t, "-arrows")
	if !strings.Contains(out, "⇑") || !strings.Contains(out, "⇕") {
		t.Error("arrow notation missing")
	}
}

func TestListCatalog(t *testing.T) {
	out := render(t, "-list")
	for _, want := range []string{"March C-", "March U", "MATS+", "van de Goor"} {
		if !strings.Contains(out, want) {
			t.Errorf("catalog listing missing %q", want)
		}
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-test", "March Z"}, &b); err == nil {
		t.Error("unknown test accepted")
	}
	if err := run([]string{"-width", "12"}, &b); err == nil {
		t.Error("bad width accepted")
	}
	if err := run([]string{"-notation", "{bogus}"}, &b); err == nil {
		t.Error("bad notation accepted")
	}
}

func TestSymmetricFlag(t *testing.T) {
	out := render(t, "-symmetric", "-width", "8")
	if !strings.Contains(out, "symmetric variant") {
		t.Fatalf("symmetric output missing:\n%s", out)
	}
}
