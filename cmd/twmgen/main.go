// Command twmgen transforms a bit-oriented march test into the
// paper's transparent word-oriented march test and prints every
// artifact of the transformation:
//
//	twmgen -test "March C-" -width 32
//	twmgen -notation "{any(w0); up(r0,w1); down(r1,w0)}" -width 8
//	twmgen -list
//
// The output shows the solid SMarch, the transparent TSMarch, the
// added ATMarch, the combined TWMarch, the signature-prediction test,
// and the complexity accounting against the two prior schemes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"twmarch/internal/complexity"
	"twmarch/internal/core"
	"twmarch/internal/march"
	"twmarch/internal/report"
	"twmarch/internal/symmetric"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "twmgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("twmgen", flag.ContinueOnError)
	testName := fs.String("test", "March C-", "catalog test name")
	notation := fs.String("notation", "", "explicit march notation (overrides -test)")
	width := fs.Int("width", 32, "word width (power of two)")
	list := fs.Bool("list", false, "list the catalog tests and exit")
	arrows := fs.Bool("arrows", false, "print tests in ⇑⇓⇕ arrow notation")
	sym := fs.Bool("symmetric", false, "also print the symmetric (zero-signature) variant")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		return listCatalog(out)
	}

	var bm *march.Test
	var err error
	if *notation != "" {
		bm, err = march.Parse("custom", *notation)
	} else {
		bm, err = march.Lookup(*testName)
	}
	if err != nil {
		return err
	}

	res, err := core.TWMTA(bm, *width)
	if err != nil {
		return err
	}

	show := func(t *march.Test) string {
		if *arrows {
			return t.String()
		}
		return t.ASCII()
	}

	fmt.Fprintf(out, "source (%s, M=%d, Q=%d):\n  %s\n\n", bm.Name, bm.Ops(), bm.Reads(), show(bm))
	fmt.Fprintf(out, "SMarch (solid backgrounds):\n  %s\n\n", show(res.SMarch))
	fmt.Fprintf(out, "TSMarch (transparent solid part):\n  %s\n\n", show(res.TSMarch))
	fmt.Fprintf(out, "ATMarch (added intra-word part, base %s):\n  %s\n\n", base(res), show(res.ATMarch))
	fmt.Fprintf(out, "TWMarch (complete transparent word test):\n  %s\n\n", show(res.TWMarch))
	fmt.Fprintf(out, "signature prediction:\n  %s\n\n", show(res.Prediction))

	if *sym {
		st, err := symmetric.MakeSymmetric(res.TWMarch)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "symmetric variant (one pass, zero-signature XOR compaction, %dN):\n  %s\n\n",
			st.Ops(), show(st))
	}

	tb := &report.Table{
		Title:  fmt.Sprintf("complexity for W=%d (ops per word)", *width),
		Header: []string{"scheme", "TCM", "TCP", "total"},
	}
	for _, s := range complexity.Schemes() {
		c, err := complexity.Constructive(s, bm, *width)
		if err != nil {
			return err
		}
		tb.AddRow(s.String(), fmt.Sprintf("%dN", c.TCM), fmt.Sprintf("%dN", c.TCP), fmt.Sprintf("%dN", c.Total()))
	}
	_, err = io.WriteString(out, tb.Render())
	return err
}

func base(res *core.TWMResult) string {
	if res.BaseInverted {
		return "~a"
	}
	return "a"
}

func listCatalog(out io.Writer) error {
	tb := &report.Table{
		Title:  "catalog of bit-oriented march tests",
		Header: []string{"name", "ops", "reads", "detects", "reference"},
	}
	for _, e := range march.Catalog() {
		t := march.MustLookup(e.Name)
		tb.AddRow(e.Name, fmt.Sprintf("%dN", t.Ops()), fmt.Sprintf("%dN", t.Reads()), e.Detects, e.Reference)
	}
	_, err := io.WriteString(out, tb.Render())
	return err
}
