package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/cluster"
)

func TestDefaultWorkerID(t *testing.T) {
	id := defaultWorkerID()
	if id == "" {
		t.Fatal("empty worker id")
	}
	if !strings.HasSuffix(id, fmt.Sprintf("-%d", os.Getpid())) {
		t.Fatalf("worker id %q does not end in the pid", id)
	}
}

// TestWorkerDrivesCampaign drives the worker exactly as main wires it
// — default simulation path, max-idle exit — against an in-process
// coordinator: it simulates a one-cell grid and then winds down on its
// own once the queue is dry.
func TestWorkerDrivesCampaign(t *testing.T) {
	coord := cluster.New(cluster.Options{IdleRetry: 2 * time.Millisecond})
	ts := httptest.NewServer(coord)
	defer ts.Close()

	w := &cluster.Worker{
		Client:   &cluster.Client{Base: ts.URL, Worker: defaultWorkerID(), Backoff: time.Millisecond},
		Parallel: 2,
		Poll:     2 * time.Millisecond,
		MaxIdle:  250 * time.Millisecond,
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()

	spec := campaign.Spec{
		Tests:   []string{"MATS"},
		Widths:  []int{2},
		Words:   []int{2},
		Schemes: []string{campaign.SchemeTWM},
		Modes:   []string{campaign.ModeCompare},
		Classes: []string{"SAF"},
		Seed:    3,
	}
	agg, err := coord.Dispatch(context.Background(), "c1", spec, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Errors != 0 || agg.Faults == 0 {
		t.Fatalf("dispatched aggregate %+v", agg)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never hit its idle limit")
	}
}
