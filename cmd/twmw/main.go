// Command twmw is the cluster worker daemon: the execution half of
// twmd -cluster. It polls the coordinator's lease queue, simulates
// each leased campaign cell locally — on the same reference-trace fast
// path and per-geometry fault cache a local engine run uses — and
// reports the result with the cell's deterministic seed, so worker
// placement never affects a campaign's output.
//
//	twmw -coordinator http://twmd-host:8080
//	twmw -coordinator http://twmd-host:8080 -parallel 8 -max-idle 30s
//	twmw -coordinator http://twmd-host:8080 -metrics-addr :9090
//
// Leases are kept alive by heartbeats; if the coordinator answers
// "gone" — the job was evicted, canceled, or drained — the worker
// cancels the cell mid-simulation and moves on. Transient coordinator
// failures are retried with jittered exponential backoff, honoring
// Retry-After. With -max-idle the daemon exits 0 once it has been out
// of work that long — how a CI-spawned fleet winds down — and on
// SIGINT/SIGTERM it stops leasing and abandons in-flight cells (the
// coordinator requeues them).
//
// Logs are structured (log/slog): every record carries component=twmw
// and the worker id, and per-lease records add job/lease/cell;
// -log-format selects text or json. With -metrics-addr the worker
// serves its own observability sidecar — GET /metrics (Prometheus
// text exposition covering leases processed, simulation latency,
// retries and idle time), GET /debug/traces (the worker's span ring:
// each leased cell runs under a span continuing the coordinator's
// traceparent), and /debug/pprof — on a separate listener so the
// scrape surface never competes with simulation work. -trace-sample
// and -trace-slow tune what the span ring retains.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"twmarch/internal/cluster"
	"twmarch/internal/obs"
	"twmarch/internal/tracing"
)

// configureTracing installs the process-wide tracer from the -trace-*
// flags, mirroring twmd: a zero or negative sample rate head-samples
// nothing (expressed to Options as a negative rate, since zero is its
// "default to 1" sentinel), leaving only errored and slow spans.
func configureTracing(sample float64, slow time.Duration) {
	if sample <= 0 {
		sample = -1
	}
	tracing.Configure(tracing.Options{Sample: sample, Slow: slow})
}

// defaultWorkerID names the worker host-pid when -id is not given, so
// a fleet spawned from one image still reports distinct ids.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil {
		host = "twmw"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

func main() {
	fs := flag.NewFlagSet("twmw", flag.ExitOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (twmd -cluster), e.g. http://host:8080 (required)")
	id := fs.String("id", "", "worker id reported to the coordinator (default host-pid)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "cells simulated concurrently")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle poll floor between lease attempts")
	maxIdle := fs.Duration("max-idle", 0, "exit cleanly after this long without work (0 = poll forever)")
	quiet := fs.Bool("quiet", false, "suppress per-lease log lines")
	logFormat := fs.String("log-format", obs.LogText, "structured log format: text or json")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (empty = disabled)")
	addrFile := fs.String("addr-file", "", "write the resolved -metrics-addr listen address to this file (lets harnesses use :0)")
	traceSample := fs.Float64("trace-sample", 1, "tracing head-sample rate in [0,1]; 0 keeps only errored and slow spans")
	traceSlow := fs.Duration("trace-slow", 250*time.Millisecond, "tracing tail-keep threshold: unsampled spans at least this slow are retained anyway")
	fs.Parse(os.Args[1:])

	configureTracing(*traceSample, *traceSlow)
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "twmw: -coordinator is required")
		os.Exit(2)
	}
	worker := *id
	if worker == "" {
		worker = defaultWorkerID()
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, "twmw", nil).With("worker", worker)
	w := &cluster.Worker{
		Client:   &cluster.Client{Base: *coordinator, Worker: worker},
		Parallel: *parallel,
		Poll:     *poll,
		MaxIdle:  *maxIdle,
	}
	if !*quiet {
		w.Log = logger
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			logger.Error("metrics listen failed", "addr", *metricsAddr, "err", err)
			os.Exit(1)
		}
		// Spawn-under-test helper: a harness that asked for :0 learns
		// the real scrape address from the addr file (written via
		// rename so a poller never reads a partial address).
		if *addrFile != "" {
			tmp := *addrFile + ".tmp"
			if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err == nil {
				err = os.Rename(tmp, *addrFile)
			}
			if err != nil {
				logger.Error("write addr file failed", "path", *addrFile, "err", err)
				os.Exit(1)
			}
		}
		msrv := &http.Server{
			Handler: obs.Instrument("twmw", obs.DebugMux(obs.Default()), func(r *http.Request) string {
				if strings.HasPrefix(r.URL.Path, "/debug/") {
					return "/debug/*"
				}
				return r.URL.Path
			}),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := msrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				logger.Error("metrics listener failed", "addr", ln.Addr().String(), "err", err)
			}
		}()
		defer msrv.Close()
		logger.Info("serving metrics", "addr", ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("polling coordinator", "coordinator", *coordinator, "parallel", *parallel)
	err := w.Run(ctx)
	switch {
	case err == nil:
		logger.Info("idle limit reached, exiting")
	case ctx.Err() != nil:
		logger.Info("signal received, exiting; in-flight leases will expire and requeue")
	default:
		logger.Error("worker failed", "err", err)
		os.Exit(1)
	}
}
