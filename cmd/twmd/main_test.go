package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"twmarch/internal/campaign"
)

func smallSpec() campaign.Spec {
	return campaign.Spec{
		Name:    "e2e",
		Tests:   []string{"MATS", "March C-"},
		Widths:  []int{2, 4},
		Words:   []int{2, 3},
		Classes: []string{"SAF", "TF"},
		Seed:    11,
	}
}

func postSpec(t testing.TB, ts *httptest.Server, spec campaign.Spec) map[string]any {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %s", resp.Status)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getStatus(t testing.TB, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status returned %s", resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t testing.TB, ts *httptest.Server, id, want string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State != StateRunning && st.State != StateQueued {
			t.Fatalf("campaign %s reached %q (error %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %q", id, want)
	return Status{}
}

// TestEndToEnd exercises the whole job lifecycle: submit → poll →
// fetch results → cancel a second campaign. The fetched aggregate must
// be byte-identical to a direct engine run of the same spec.
func TestEndToEnd(t *testing.T) {
	ts := httptest.NewServer(newServer(campaign.Engine{}, 2, nil, nil, nil))
	defer ts.Close()

	// Submit.
	sub := postSpec(t, ts, smallSpec())
	id, _ := sub["id"].(string)
	if id == "" {
		t.Fatalf("submit response has no id: %v", sub)
	}
	if cells, _ := sub["cells"].(float64); cells != 16 {
		t.Fatalf("submit reports %v cells, want 16 (2 tests × 2 widths × 2 sizes × 2 schemes)", sub["cells"])
	}

	// Poll until done.
	st := waitState(t, ts, id, StateDone)
	if st.Done != int64(st.Cells) || st.Fraction != 1 {
		t.Fatalf("done campaign reports progress %d/%d (%.2f)", st.Done, st.Cells, st.Fraction)
	}

	// Fetch results and compare with a direct engine run.
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results returned %s: %s", resp.Status, got)
	}
	want, err := campaign.Engine{}.Run(context.Background(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wantBytes)+"\n" {
		t.Errorf("daemon aggregate diverges from direct engine run:\n%s", got)
	}

	// Text rendering.
	resp, err = http.Get(ts.URL + "/campaigns/" + id + "/results?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := readAll(resp)
	if !strings.Contains(string(text), "op counts") {
		t.Errorf("text results missing op-count table:\n%s", text)
	}

	// Cancel a big second campaign mid-run.
	big := smallSpec()
	big.Name = "big"
	big.Words = []int{64, 96, 128, 160}
	big.Widths = []int{8, 16, 32}
	big.Workers = 1
	sub2 := postSpec(t, ts, big)
	id2, _ := sub2["id"].(string)
	resp, err = http.Post(ts.URL+"/campaigns/"+id2+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel returned %s", resp.Status)
	}
	st2 := waitState(t, ts, id2, StateCanceled)
	if st2.Error == "" {
		t.Error("canceled campaign carries no error")
	}
	resp, err = http.Get(ts.URL + "/campaigns/" + id2 + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("results of canceled campaign returned %s, want 410", resp.Status)
	}

	// Listing shows both, in submission order.
	resp, err = http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list []Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 2 || list[0].ID != id || list[1].ID != id2 {
		t.Errorf("listing wrong: %+v", list)
	}

	// DELETE evicts the job: status turns 404, listing shrinks.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+id2, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete returned %s", resp.Status)
	}
	resp, err = http.Get(ts.URL + "/campaigns/" + id2)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted campaign still resolves: %s", resp.Status)
	}
	resp, err = http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	list = nil
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != id {
		t.Errorf("listing after eviction wrong: %+v", list)
	}
}

// TestPipelineSpecEndToEnd submits a pipeline-enabled spec and checks
// that the results report the yield section: diagnosed fault-class
// histogram, repairability rate, and post-ECC escape rate.
func TestPipelineSpecEndToEnd(t *testing.T) {
	ts := httptest.NewServer(newServer(campaign.Engine{}, 2, nil, nil, nil))
	defer ts.Close()

	spec := smallSpec()
	spec.Pipeline = &campaign.PipelineSpec{Enabled: true, SpareRows: 1, SpareCols: 1, ECC: campaign.ECCSEC}
	sub := postSpec(t, ts, spec)
	id, _ := sub["id"].(string)
	waitState(t, ts, id, StateDone)

	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results returned %s: %s", resp.Status, got)
	}
	var agg struct {
		Yield      map[string]json.RawMessage `json:"yield"`
		YieldTotal struct {
			Analyzed          int            `json:"analyzed"`
			ByDiagClass       map[string]int `json:"by_diag_class"`
			RepairabilityRate float64        `json:"repairability_rate"`
			PostECCEscapeRate float64        `json:"post_ecc_escape_rate"`
		} `json:"yield_total"`
	}
	if err := json.Unmarshal(got, &agg); err != nil {
		t.Fatal(err)
	}
	if len(agg.Yield) == 0 || agg.YieldTotal.Analyzed == 0 {
		t.Fatalf("results missing yield section:\n%.2000s", got)
	}
	if len(agg.YieldTotal.ByDiagClass) == 0 {
		t.Error("yield section has no diagnosed fault-class histogram")
	}
	if r := agg.YieldTotal.RepairabilityRate; r <= 0 || r > 1 {
		t.Errorf("repairability rate %v out of (0, 1]", r)
	}
	if r := agg.YieldTotal.PostECCEscapeRate; r < 0 || r > 1 {
		t.Errorf("post-ECC escape rate %v out of [0, 1]", r)
	}

	resp, err = http.Get(ts.URL + "/campaigns/" + id + "/results?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := readAll(resp)
	if !strings.Contains(string(text), "yield pipeline") {
		t.Errorf("text results missing yield table:\n%s", text)
	}
}

// TestJobQueue pins the -maxjobs gate: with one slot, a second
// submission stays queued while the first runs, and canceling a queued
// job resolves it without ever running.
func TestJobQueue(t *testing.T) {
	ts := httptest.NewServer(newServer(campaign.Engine{}, 1, nil, nil, nil))
	defer ts.Close()

	// Seconds of single-worker simulation even on the bit-parallel
	// lane path; the test cancels it long before it finishes.
	slow := smallSpec()
	slow.Name = "slow"
	slow.Words = []int{512, 768, 1024}
	slow.Widths = []int{16, 32}
	slow.Workers = 1
	sub1 := postSpec(t, ts, slow)
	id1, _ := sub1["id"].(string)

	sub2 := postSpec(t, ts, smallSpec())
	id2, _ := sub2["id"].(string)
	st2 := getStatus(t, ts, id2)
	if st2.State != StateQueued {
		t.Fatalf("second job is %q with one slot busy, want %q", st2.State, StateQueued)
	}
	if st2.Fraction != 0 {
		t.Errorf("queued job reports fraction %.2f, want 0", st2.Fraction)
	}
	if st2.Coverage != 0 {
		t.Errorf("queued job reports coverage %.2f, want 0 (nothing folded yet)", st2.Coverage)
	}
	resp, err := http.Get(ts.URL + "/campaigns/" + id2 + "/results")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("results of queued job returned %s, want 409", resp.Status)
	}

	// Cancel the queued job: it resolves canceled with nothing run.
	resp, err = http.Post(ts.URL+"/campaigns/"+id2+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st2 = waitState(t, ts, id2, StateCanceled)
	if st2.Done != 0 {
		t.Errorf("canceled queued job ran %d cells", st2.Done)
	}

	// Cancel the runner; the slot frees for later submissions.
	resp, err = http.Post(ts.URL+"/campaigns/"+id1+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, id1, StateCanceled)
	sub3 := postSpec(t, ts, smallSpec())
	id3, _ := sub3["id"].(string)
	waitState(t, ts, id3, StateDone)
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var b bytes.Buffer
	_, err := b.ReadFrom(resp.Body)
	return b.Bytes(), err
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	ts := httptest.NewServer(newServer(campaign.Engine{}, 2, nil, nil, nil))
	defer ts.Close()
	for _, body := range []string{
		`{`,
		`{"tests":[]}`,
		`{"tests":["no such test"],"widths":[4],"words":[4]}`,
		`{"tests":["MATS"],"widths":[3],"words":[4]}`,
		`{"tests":["MATS"],"widths":[4],"words":[4],"bogus_field":1}`,
		`{"tests":["MATS"],"widths":[4],"words":[100000]}`,
	} {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s accepted with %s", body, resp.Status)
		}
	}
}

func TestRoutingErrors(t *testing.T) {
	ts := httptest.NewServer(newServer(campaign.Engine{}, 2, nil, nil, nil))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/campaigns/c999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id returned %s", resp.Status)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/campaigns", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /campaigns returned %s", resp.Status)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz returned %s", resp.Status)
	}
}

// TestRunOnce covers the -once -spec batch mode in both output formats.
func TestRunOnce(t *testing.T) {
	spec := smallSpec()
	raw, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var text bytes.Buffer
	if err := runOnce(context.Background(), campaign.Engine{}, path, false, &text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "campaign \"e2e\"") {
		t.Errorf("text report missing title:\n%s", text.String())
	}

	var js bytes.Buffer
	if err := runOnce(context.Background(), campaign.Engine{}, path, true, &js); err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Engine{}.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if js.String() != string(wb)+"\n" {
		t.Error("-once -json output diverges from direct engine run")
	}

	if err := runOnce(context.Background(), campaign.Engine{}, "", false, &text); err == nil {
		t.Error("missing -spec accepted")
	}
	if err := runOnce(context.Background(), campaign.Engine{}, filepath.Join(t.TempDir(), "nope.json"), false, &text); err == nil {
		t.Error("unreadable spec accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if err := runOnce(context.Background(), campaign.Engine{}, bad, false, &text); err == nil {
		t.Error("malformed spec accepted")
	}
}
