package main

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"twmarch/internal/campaign"
)

// hub is one job's result event broadcaster: the engine emits each
// completed CellResult into it (campaign.Sink), and any number of
// /events subscribers replay the backlog and then follow the live
// tail. Each result is marshaled to its NDJSON line once, on Emit —
// not per subscriber — and lines are retained for the life of the job
// so a subscriber attaching late, or after a restart when the hub is
// re-seeded from the journal, still sees every cell exactly once.
type hub struct {
	mu    sync.Mutex
	lines [][]byte
	done  bool
	// wake is closed (and replaced) on every append, and closed for
	// good when the stream ends.
	wake chan struct{}
}

func newHub() *hub { return &hub{wake: make(chan struct{})} }

// Emit appends one result and wakes subscribers (campaign.Sink).
func (h *hub) Emit(r campaign.CellResult) {
	line, err := json.Marshal(r)
	if err != nil {
		return // cannot happen for a CellResult; drop rather than wedge
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	h.lines = append(h.lines, append(line, '\n'))
	close(h.wake)
	h.wake = make(chan struct{})
}

// seed preloads journal-recovered results without waking anyone; it
// runs before any subscriber can attach.
func (h *hub) seed(rs []campaign.CellResult) {
	for _, r := range rs {
		line, err := json.Marshal(r)
		if err != nil {
			continue
		}
		h.mu.Lock()
		h.lines = append(h.lines, append(line, '\n'))
		h.mu.Unlock()
	}
}

// close ends the stream: subscribers drain the backlog and return.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return
	}
	h.done = true
	close(h.wake)
}

// from returns the event lines at positions ≥ i, whether the stream
// has ended, and the channel to wait on for more. The returned slice
// is capped so later appends never alias into it.
func (h *hub) from(i int) ([][]byte, bool, <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var batch [][]byte
	if i < len(h.lines) {
		batch = h.lines[i:len(h.lines):len(h.lines)]
	}
	return batch, h.done, h.wake
}

// events streams a job's per-cell results as NDJSON: the backlog
// first, then each new result as it lands, until the job reaches a
// terminal state or the client disconnects. Each line is one compact
// campaign.CellResult.
func (s *server) events(w http.ResponseWriter, r *http.Request, j *job) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	// The server's global WriteTimeout stamps one deadline at request
	// start; a long-lived stream must keep rolling it forward — both
	// when writing and while idling between cells, or a subscriber to a
	// slow grid would be severed mid-job and mistake the truncation for
	// a clean end of stream.
	const deadlineSlack = 2 * time.Minute
	idle := time.NewTimer(deadlineSlack / 4)
	defer idle.Stop()
	i := 0
	for {
		batch, done, wake := j.hub.from(i)
		for _, line := range batch {
			rc.SetWriteDeadline(time.Now().Add(deadlineSlack))
			if _, err := w.Write(line); err != nil {
				return
			}
		}
		i += len(batch)
		if fl != nil {
			fl.Flush()
		}
		if done && len(batch) == 0 {
			return
		}
		if done {
			continue // drain whatever landed between from() and close
		}
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(deadlineSlack / 4)
		select {
		case <-wake:
		case <-idle.C:
			// Idle keep-alive: extend the write deadline and loop.
			rc.SetWriteDeadline(time.Now().Add(deadlineSlack))
		case <-r.Context().Done():
			return
		}
	}
}
