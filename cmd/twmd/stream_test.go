package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"twmarch/internal/campaign"
)

// readEvents consumes a campaign's NDJSON event stream to EOF and
// returns the decoded per-cell results.
func readEvents(t testing.TB, ts *httptest.Server, id string) []campaign.CellResult {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events returned %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type %q", ct)
	}
	var out []campaign.CellResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 8*1024*1024)
	for sc.Scan() {
		var r campaign.CellResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEventsStream subscribes to a running campaign's event stream and
// checks the contract: one NDJSON line per grid cell, each cell exactly
// once, and the folded stream matches the final aggregate.
func TestEventsStream(t *testing.T) {
	ts := httptest.NewServer(newServer(campaign.Engine{}, 2, nil, nil, nil))
	defer ts.Close()

	sub := postSpec(t, ts, smallSpec())
	id, _ := sub["id"].(string)
	if ev, _ := sub["events"].(string); ev != "/campaigns/"+id+"/events" {
		t.Fatalf("submit response advertises events %q", sub["events"])
	}
	events := readEvents(t, ts, id)
	if len(events) != 16 {
		t.Fatalf("stream delivered %d events, want 16", len(events))
	}
	seen := make(map[int]bool)
	for _, r := range events {
		if seen[r.Index] {
			t.Fatalf("cell %d streamed twice", r.Index)
		}
		seen[r.Index] = true
	}

	// The streamed results fold into the same canonical aggregate the
	// results endpoint serves.
	waitState(t, ts, id, StateDone)
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	want, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := campaign.NewAggregate(smallSpec().Normalized(), reorder(events)).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got)+"\n" {
		t.Errorf("folded event stream diverges from results endpoint")
	}

	// A late subscriber to a finished job replays the full backlog.
	if late := readEvents(t, ts, id); len(late) != 16 {
		t.Errorf("late subscription replayed %d events, want 16", len(late))
	}
}

// reorder slots completion-ordered results back into grid order.
func reorder(events []campaign.CellResult) []campaign.CellResult {
	out := make([]campaign.CellResult, len(events))
	for _, r := range events {
		out[r.Index] = r
	}
	return out
}

// TestStatusLivePartial polls a slow single-worker campaign mid-run and
// checks the live view: partial coverage, progress, and rate/ETA from
// the engine's timestamps, all before the grid finishes.
func TestStatusLivePartial(t *testing.T) {
	ts := httptest.NewServer(newServer(campaign.Engine{}, 2, nil, nil, nil))
	defer ts.Close()

	slow := smallSpec()
	slow.Words = []int{48, 64, 96, 128}
	slow.Widths = []int{8, 16}
	slow.Workers = 1
	sub := postSpec(t, ts, slow)
	id, _ := sub["id"].(string)

	var mid Status
	for {
		mid = getStatus(t, ts, id)
		if mid.Done > 0 && mid.State == StateRunning {
			break
		}
		if mid.State != StateQueued && mid.State != StateRunning {
			t.Fatalf("campaign reached %q before a partial poll", mid.State)
		}
		time.Sleep(time.Millisecond)
	}
	if mid.Faults == 0 || mid.Detected == 0 {
		t.Errorf("running status has no partial coverage: %+v", mid)
	}
	if mid.Coverage <= 0 || mid.Coverage > 1 {
		t.Errorf("running status coverage %f out of (0, 1]", mid.Coverage)
	}
	if mid.RunElapsedNS <= 0 || mid.CellsPerSec <= 0 {
		t.Errorf("running status missing rate: %+v", mid)
	}
	if mid.Done < int64(mid.Cells) && mid.ETANS <= 0 {
		t.Errorf("mid-run status has no ETA: %+v", mid)
	}

	fin := waitState(t, ts, id, StateDone)
	if fin.Faults < mid.Faults || fin.Detected < mid.Detected {
		t.Errorf("final coverage went backward: %+v vs %+v", fin, mid)
	}
	if fin.ETANS != 0 {
		t.Errorf("done status still reports ETA %d", fin.ETANS)
	}
}

// TestConcurrentStreamRace hammers the API from many goroutines at
// once — submits, event subscriptions, status polls, cancels and
// evictions — as the race-detector e2e for the streaming path.
func TestConcurrentStreamRace(t *testing.T) {
	ts := httptest.NewServer(newServer(campaign.Engine{}, 2, nil, nil, nil))
	defer ts.Close()

	const jobs = 6
	ids := make([]string, jobs)
	for i := range ids {
		spec := smallSpec()
		spec.Name = fmt.Sprintf("race-%d", i)
		spec.Seed = int64(i)
		sub := postSpec(t, ts, spec)
		ids[i], _ = sub["id"].(string)
	}
	// The racing readers tolerate 404s: an evicting goroutine may win
	// the race against a subscription or poll. Assertions happen after
	// the dust settles.
	tolerantGet := func(url string) {
		resp, err := http.Get(url)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				return
			}
		}
	}
	var wg sync.WaitGroup
	for i, id := range ids {
		i, id := i, id
		// Two event subscribers per job, one of which bails early.
		wg.Add(1)
		go func() {
			defer wg.Done()
			tolerantGet(ts.URL + "/campaigns/" + id + "/events")
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/campaigns/"+id+"/events", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			buf := make([]byte, 256)
			resp.Body.Read(buf)
			cancel() // disconnect mid-stream
			resp.Body.Close()
		}()
		// A status poller.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				tolerantGet(ts.URL + "/campaigns/" + id)
				time.Sleep(time.Millisecond)
			}
		}()
		// Cancel a third of the jobs mid-run, evict another third.
		if i%3 == 1 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/campaigns/"+id+"/cancel", "application/json", nil)
				if err == nil {
					resp.Body.Close()
				}
			}()
		}
		if i%3 == 2 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+id, nil)
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					resp.Body.Close()
				}
			}()
		}
	}
	wg.Wait()
	// Every surviving job settles into a terminal state, with its
	// event stream fully replayable.
	for i, id := range ids {
		if i%3 == 2 {
			continue // may be evicted
		}
		st := getStatus(t, ts, id)
		for st.State == StateRunning || st.State == StateQueued {
			time.Sleep(5 * time.Millisecond)
			st = getStatus(t, ts, id)
		}
		if st.State == StateDone {
			if events := readEvents(t, ts, id); len(events) != st.Cells {
				t.Errorf("job %s replayed %d events, want %d", id, len(events), st.Cells)
			}
		}
	}
}

// TestDrainRejectsSubmissions pins the graceful-shutdown gate: after
// beginDrain, submissions get 503 while reads keep working, and
// drainJobs waits out the running jobs.
func TestDrainRejectsSubmissions(t *testing.T) {
	h := newServer(campaign.Engine{}, 2, nil, nil, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	sub := postSpec(t, ts, smallSpec())
	id, _ := sub["id"].(string)
	// Wait for the runner to leave "queued": drainJobs abandons queued
	// jobs outright, and this test wants the drain-a-running-job path.
	for getStatus(t, ts, id).State == StateQueued {
		time.Sleep(time.Millisecond)
	}

	h.beginDrain()
	body, _ := json.Marshal(smallSpec())
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain returned %s, want 503", resp.Status)
	}
	if !h.drainJobs(context.Background(), time.Second) {
		t.Fatal("drain with no deadline did not complete")
	}
	st := getStatus(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("drained job is %q, want done", st.State)
	}
}

// BenchmarkTwmdStream measures the server's full streaming round trip:
// submit a grid, follow its NDJSON event stream to completion, evict.
func BenchmarkTwmdStream(b *testing.B) {
	ts := httptest.NewServer(newServer(campaign.Engine{}, 2, nil, nil, nil))
	defer ts.Close()
	spec := smallSpec()
	for i := 0; i < b.N; i++ {
		sub := postSpec(b, ts, spec)
		id, _ := sub["id"].(string)
		events := readEvents(b, ts, id)
		if len(events) != 16 {
			b.Fatalf("stream delivered %d events, want 16", len(events))
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
	b.ReportMetric(16, "cells_streamed")
}
