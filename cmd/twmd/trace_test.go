package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/cluster"
	"twmarch/internal/tracing"
)

// fetchTraceSpans decodes one NDJSON span surface.
func fetchTraceSpans(t *testing.T, url string) []tracing.SpanRecord {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("GET %s: content type %q", url, ct)
	}
	var spans []tracing.SpanRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec tracing.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Bytes(), err)
		}
		spans = append(spans, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return spans
}

// TestTraceEndToEnd is the tracing acceptance e2e: a campaign
// submitted with a caller-chosen traceparent runs through the cluster
// path — coordinator dispatch, lease HTTP, worker execution, per-cell
// simulation, completion shipping — and GET /campaigns/{id}/trace
// reassembles one contiguous tree on exactly that trace ID.
func TestTraceEndToEnd(t *testing.T) {
	coord := cluster.New(cluster.Options{
		LeaseTTL:  5 * time.Second,
		IdleRetry: 2 * time.Millisecond,
	})
	s := newServer(campaign.Engine{}, 2, nil, coord, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Submit with a known traceparent, the way an external caller
	// carrying its own trace would.
	root := tracing.SpanContext{Trace: tracing.NewTraceID(), Span: tracing.NewSpanID(), Sampled: true}
	body, err := json.Marshal(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/campaigns", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	tracing.Inject(req.Header, root)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id, _ := sub["id"].(string)
	if id == "" {
		t.Fatalf("submit response: %v", sub)
	}

	stop := clusterWorkers(t, ts.URL, 2)
	defer stop()
	waitState(t, ts, id, StateDone)

	// The job's assembled timeline: every span on the submitter's
	// trace, including the ones that lived in worker processes.
	spans := fetchTraceSpans(t, ts.URL+"/campaigns/"+id+"/trace")
	if len(spans) == 0 {
		t.Fatal("empty trace timeline for a completed cluster job")
	}
	byID := make(map[string]tracing.SpanRecord, len(spans))
	byName := make(map[string][]tracing.SpanRecord)
	for _, sp := range spans {
		if sp.Trace != root.Trace.String() {
			t.Fatalf("span %s (%s) on trace %s, want the submitted %s",
				sp.Span, sp.Name, sp.Trace, root.Trace.String())
		}
		byID[sp.Span] = sp
		byName[sp.Name] = append(byName[sp.Name], sp)
	}

	// One contiguous tree: submit -> job -> dispatch -> lease ->
	// worker.cell -> campaign.cell, every stage present, every parent
	// resolvable. The job span's parent is the submit request's server
	// span, which lives in the ring rather than the job collector.
	cells := smallSpec().CellCount()
	if n := len(byName["job"]); n != 1 {
		t.Fatalf("timeline has %d job spans, want 1 (names: %v)", n, names(byName))
	}
	if n := len(byName["cluster.dispatch"]); n != 1 {
		t.Fatalf("timeline has %d dispatch spans, want 1", n)
	}
	if n := len(byName["cluster.lease"]); n < cells {
		t.Fatalf("timeline has %d lease spans, want >= %d", n, cells)
	}
	if n := len(byName["worker.cell"]); n < cells {
		t.Fatalf("timeline has %d worker.cell spans, want >= %d", n, cells)
	}
	if n := len(byName["campaign.cell"]); n != cells {
		t.Fatalf("timeline has %d campaign.cell spans, want exactly %d", n, cells)
	}
	jobSpan := byName["job"][0]
	for _, sp := range spans {
		if sp.Span == jobSpan.Span {
			continue
		}
		if sp.Parent == "" {
			t.Errorf("span %s (%s) has no parent", sp.Span, sp.Name)
			continue
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Errorf("orphan span %s (%s): parent %s not in the timeline", sp.Span, sp.Name, sp.Parent)
		}
	}
	// Every completed lease closed ok and every cell span is annotated
	// with its cell index and fault counts.
	for _, sp := range byName["cluster.lease"] {
		if sp.Status != tracing.StatusOK {
			t.Errorf("lease span %s status %q, want ok", sp.Span, sp.Status)
		}
	}
	for _, sp := range byName["campaign.cell"] {
		if sp.Attrs["cell"] == "" || sp.Attrs["faults"] == "" {
			t.Errorf("campaign.cell span %s missing attrs: %v", sp.Span, sp.Attrs)
		}
	}

	// The ring surface agrees: /debug/traces filtered to the submitted
	// trace contains the submit request's server span as a child of the
	// caller's root span, and the job is findable by id.
	ringSpans := fetchTraceSpans(t, ts.URL+"/debug/traces?trace="+root.Trace.String())
	var serverSpan *tracing.SpanRecord
	for i, sp := range ringSpans {
		if sp.Kind == tracing.KindServer && sp.Parent == root.Span.String() {
			serverSpan = &ringSpans[i]
		}
	}
	if serverSpan == nil {
		t.Fatalf("/debug/traces has no server span parented on the caller's root (got %d spans)", len(ringSpans))
	}
	if jobSpan.Parent != serverSpan.Span {
		t.Errorf("job span parent %s, want the submit server span %s", jobSpan.Parent, serverSpan.Span)
	}
	if byJob := fetchTraceSpans(t, ts.URL+"/debug/traces?job="+id); len(byJob) == 0 {
		t.Error("/debug/traces?job= found nothing for the completed job")
	}
}

func names(byName map[string][]tracing.SpanRecord) []string {
	out := make([]string, 0, len(byName))
	for n := range byName {
		out = append(out, n)
	}
	return out
}

// TestTraceRestartResume pins the jobstore half of the tentpole: a
// journaled job interrupted mid-run resumes on the SAME trace ID after
// a restart, because submit stamped the traceparent into the store.
func TestTraceRestartResume(t *testing.T) {
	dir := t.TempDir()
	coord := cluster.New(cluster.Options{LeaseTTL: 10 * time.Second, IdleRetry: 2 * time.Millisecond})
	s := newServer(campaign.Engine{}, 1, openStore(t, dir), coord, nil)
	ts := httptest.NewServer(s)

	root := tracing.SpanContext{Trace: tracing.NewTraceID(), Span: tracing.NewSpanID(), Sampled: true}
	body, _ := json.Marshal(smallSpec())
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/campaigns", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	tracing.Inject(req.Header, root)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub map[string]any
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	id, _ := sub["id"].(string)

	// Complete one cell so the journal has progress, then crash.
	cl := &cluster.Client{Base: ts.URL, Worker: "w0", Backoff: time.Millisecond}
	var g *cluster.LeaseGrant
	for {
		g, err = cl.Lease(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if g.Status == cluster.StatusLease {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if rg, ok := tracing.ParseTraceParent(g.TraceParent); !ok || rg.Trace != root.Trace {
		t.Fatalf("lease grant traceparent %q not on the submitted trace", g.TraceParent)
	}
	crash(t, s)
	ts.Close()

	// Restart on the same journal; the job resumes and completes.
	s2 := newServer(campaign.Engine{}, 1, openStore(t, dir), cluster.New(cluster.Options{
		LeaseTTL: 5 * time.Second, IdleRetry: 2 * time.Millisecond}), nil)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	stop := clusterWorkers(t, ts2.URL, 2)
	defer stop()
	waitState(t, ts2, id, StateDone)

	spans := fetchTraceSpans(t, ts2.URL+"/campaigns/"+id+"/trace")
	if len(spans) == 0 {
		t.Fatal("resumed job has an empty timeline")
	}
	for _, sp := range spans {
		if sp.Trace != root.Trace.String() {
			t.Fatalf("post-restart span %s (%s) on trace %s, want the pre-restart %s",
				sp.Span, sp.Name, sp.Trace, root.Trace.String())
		}
	}
	var resumed *tracing.SpanRecord
	for i, sp := range spans {
		if sp.Name == "job" && sp.Attrs["resumed"] == "true" {
			resumed = &spans[i]
		}
	}
	if resumed == nil {
		t.Fatal("no resumed job span on the timeline")
	}
}
