package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/cluster"
)

// scrape fetches /metrics and parses the exposition into a map keyed
// by the full sample name including labels, e.g.
// `twm_cluster_lease_events_total{kind="complete"}`.
func scrape(t testing.TB, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q, want text/plain exposition", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed sample value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndToEnd pins the observability acceptance criterion: a
// cluster campaign run end to end moves the engine, cluster, worker,
// and HTTP counters visible on GET /metrics, and the /debug surfaces
// answer. The registry is process-global, so every assertion is a
// delta between scrapes, immune to other tests in the package.
func TestMetricsEndToEnd(t *testing.T) {
	coord := cluster.New(cluster.Options{
		LeaseTTL:  5 * time.Second,
		IdleRetry: 2 * time.Millisecond,
	})
	s := newServer(campaign.Engine{}, 2, nil, coord, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	before := scrape(t, ts)

	stop := clusterWorkers(t, ts.URL, 2)
	defer stop()
	sub := postSpec(t, ts, smallSpec())
	id, _ := sub["id"].(string)
	waitState(t, ts, id, StateDone)

	after := scrape(t, ts)
	cells := float64(smallSpec().CellCount())
	delta := func(key string) float64 { return after[key] - before[key] }

	// Engine layer: every cell simulated by the in-process workers runs
	// the instrumented runCell path.
	if d := delta("twm_engine_cells_total"); d < cells {
		t.Errorf("twm_engine_cells_total advanced by %v, want >= %v", d, cells)
	}
	if d := delta("twm_engine_cell_duration_seconds_count"); d < cells {
		t.Errorf("cell duration histogram count advanced by %v, want >= %v", d, cells)
	}
	// Cluster layer: one lease and one complete event per cell at
	// minimum (expiries would add more, never fewer).
	if d := delta(`twm_cluster_lease_events_total{kind="lease"}`); d < cells {
		t.Errorf("lease events advanced by %v, want >= %v", d, cells)
	}
	if d := delta(`twm_cluster_lease_events_total{kind="complete"}`); d < cells {
		t.Errorf("complete events advanced by %v, want >= %v", d, cells)
	}
	// Worker layer.
	if d := delta(`twm_worker_leases_total{outcome="completed"}`); d < cells {
		t.Errorf("worker completed leases advanced by %v, want >= %v", d, cells)
	}
	// HTTP layer: the scrape itself and the status polls are counted.
	if d := delta(`twm_http_requests_total{component="twmd",route="/metrics",method="GET",code="200"}`); d < 1 {
		t.Errorf("/metrics requests advanced by %v, want >= 1", d)
	}
	if after[`twm_http_request_duration_seconds_count{component="twmd",route="/campaigns/{id}"}`] < 1 {
		t.Error("status-poll latency histogram has no observations")
	}
	// Satellite 2: the status endpoint's rate/ETA and the gauge series
	// are the same numbers — the job gauge family must carry this job.
	if _, ok := after[`twm_job_cells_per_sec{job="`+id+`"}`]; !ok {
		t.Errorf("no twm_job_cells_per_sec series for job %s", id)
	}
	if after[`twm_jobs{state="done"}`] < 1 {
		t.Errorf("twm_jobs{state=done} = %v, want >= 1", after[`twm_jobs{state="done"}`])
	}

	// Evicting the job drops its per-job gauge series.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := scrape(t, ts)
	if _, ok := final[`twm_job_cells_per_sec{job="`+id+`"}`]; ok {
		t.Errorf("evicted job %s still has a rate gauge series", id)
	}

	// Debug surfaces answer on the same mux.
	resp, err = http.Get(ts.URL + "/debug/runtime")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Goroutines int `json:"goroutines"`
		Metrics    []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Goroutines < 1 || len(snap.Metrics) == 0 {
		t.Errorf("/debug/runtime snapshot implausible: goroutines=%d metrics=%d", snap.Goroutines, len(snap.Metrics))
	}
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/: %s", resp.Status)
	}
}

// TestStatusServesGaugeRates pins the single-source-of-truth half of
// satellite 2: the cells_per_sec and eta_ns a status poll reports are
// read back from the registry gauges it just published.
func TestStatusServesGaugeRates(t *testing.T) {
	ts := httptest.NewServer(newServer(campaign.Engine{}, 2, nil, nil, nil))
	defer ts.Close()
	sub := postSpec(t, ts, smallSpec())
	id, _ := sub["id"].(string)
	st := waitState(t, ts, id, StateDone)
	after := scrape(t, ts)
	if got := after[`twm_job_cells_per_sec{job="`+id+`"}`]; got != st.CellsPerSec {
		t.Errorf("status cells_per_sec %v != gauge %v", st.CellsPerSec, got)
	}
	if got := after[`twm_job_eta_ns{job="`+id+`"}`]; int64(got) != st.ETANS {
		t.Errorf("status eta_ns %v != gauge %v", st.ETANS, got)
	}
}
