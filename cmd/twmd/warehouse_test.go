package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"testing"

	"twmarch/internal/campaign"
	"twmarch/internal/warehouse"
)

// newWarehouseServer builds a datadir-backed server with the result
// warehouse enabled, the way main() wires it.
func newWarehouseServer(t testing.TB, dir string) (*server, *httptest.Server) {
	t.Helper()
	store := openStore(t, dir)
	wh, err := warehouse.Open(filepath.Join(dir, warehouseFile), warehouse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := newServerWith(campaign.Engine{}, 2, store, nil, wh, nil)
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); wh.Close() })
	return s, ts
}

// getQuery fetches one /campaigns/query page.
func getQuery(t testing.TB, ts *httptest.Server, params url.Values) queryPage {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/query?" + params.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query returned %d", resp.StatusCode)
	}
	var page queryPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

func TestQueryEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts := newWarehouseServer(t, dir)

	sub := postSpec(t, ts, smallSpec())
	id, _ := sub["id"].(string)
	waitState(t, ts, id, StateDone)
	cells := smallSpec().CellCount()

	// Unfiltered: the whole job.
	page := getQuery(t, ts, url.Values{})
	if len(page.Results) != cells {
		t.Fatalf("unfiltered query returned %d records, want %d", len(page.Results), cells)
	}

	// Dimension-filtered.
	page = getQuery(t, ts, url.Values{"test": {"MATS"}, "width": {"4"}})
	want := cells / 4 // one of two tests, one of two widths
	if len(page.Results) != want {
		t.Fatalf("filtered query returned %d records, want %d", len(page.Results), want)
	}
	for _, r := range page.Results {
		if r.Test != "MATS" || r.Width != 4 || r.ID != id {
			t.Fatalf("record outside the filter: %+v", r)
		}
		if r.Faults <= 0 || r.Detected <= 0 || r.Coverage <= 0 {
			t.Fatalf("record missing counters: %+v", r)
		}
	}

	// Job-range filtered with twmd-shaped bounds.
	page = getQuery(t, ts, url.Values{"min_job": {id}, "max_job": {id}})
	if len(page.Results) != cells {
		t.Fatalf("job-range query returned %d records, want %d", len(page.Results), cells)
	}
	page = getQuery(t, ts, url.Values{"min_job": {"999999"}})
	if len(page.Results) != 0 {
		t.Fatalf("out-of-range query returned %d records, want 0", len(page.Results))
	}

	// Paged: pages of 3 reassemble the full set without duplicates.
	var got int
	seen := map[string]bool{}
	params := url.Values{"limit": {"3"}}
	for {
		page = getQuery(t, ts, params)
		got += len(page.Results)
		for _, r := range page.Results {
			k := fmt.Sprintf("%s/%d", r.ID, r.Cell)
			if seen[k] {
				t.Fatalf("duplicate %s across pages", k)
			}
			seen[k] = true
		}
		if page.NextToken == "" {
			break
		}
		params.Set("page_token", page.NextToken)
		if got > cells {
			t.Fatal("paging did not terminate")
		}
	}
	if got != cells {
		t.Fatalf("paged scan returned %d records, want %d", got, cells)
	}

	// Bad parameters are 400s.
	for _, bad := range []string{"width=x", "min_job=nope", "limit=-1"} {
		resp, err := http.Get(ts.URL + "/campaigns/query?" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query?%s returned %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestQueryDisabledWithoutWarehouse(t *testing.T) {
	ts := httptest.NewServer(newServer(campaign.Engine{}, 2, nil, nil, nil))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/campaigns/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query without warehouse returned %d, want 503", resp.StatusCode)
	}
}

func TestEvictDropsIndexEntries(t *testing.T) {
	dir := t.TempDir()
	_, ts := newWarehouseServer(t, dir)

	sub := postSpec(t, ts, smallSpec())
	id, _ := sub["id"].(string)
	waitState(t, ts, id, StateDone)
	if n := len(getQuery(t, ts, url.Values{}).Results); n == 0 {
		t.Fatal("no records indexed before evict")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict returned %d", resp.StatusCode)
	}
	if n := len(getQuery(t, ts, url.Values{}).Results); n != 0 {
		t.Fatalf("query still serves %d records after evict", n)
	}
}

// TestWarehouseRestartReconcile is the drift-repair acceptance test:
// an index that vanishes (or was never written) while done journals
// exist is repaired at the next startup's reconcile, and an index
// entry whose journal was removed behind the server's back is
// dropped.
func TestWarehouseRestartReconcile(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newWarehouseServer(t, dir)

	sub := postSpec(t, ts1, smallSpec())
	id, _ := sub["id"].(string)
	waitState(t, ts1, id, StateDone)
	sub2 := postSpec(t, ts1, smallSpec())
	id2, _ := sub2["id"].(string)
	waitState(t, ts1, id2, StateDone)
	cells := smallSpec().CellCount()

	ts1.Close()
	if err := s1.wh.Close(); err != nil {
		t.Fatal(err)
	}

	// Sabotage both directions: the index file disappears entirely, and
	// job 2's journal disappears behind the warehouse's back.
	if err := os.Remove(filepath.Join(dir, warehouseFile)); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, id2)); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newWarehouseServer(t, dir)
	page := getQuery(t, ts2, url.Values{})
	if len(page.Results) != cells {
		t.Fatalf("after reconcile query returned %d records, want %d", len(page.Results), cells)
	}
	for _, r := range page.Results {
		if r.ID != id {
			t.Fatalf("record for removed job survived reconcile: %+v", r)
		}
	}
}
