// Command twmd is the campaign job server: an HTTP/JSON daemon that
// runs test campaigns (grids over march tests, word widths, memory
// sizes, schemes and detection modes) on the internal/campaign engine.
//
//	twmd -addr :8080            serve the job API
//	twmd -addr :8080 -datadir d serve with a durable job journal
//	twmd -once -spec c.json     run one campaign and print the report
//	twmd -once -spec c.json -json   ... printing canonical JSON instead
//
// At most -maxjobs campaigns run concurrently; further submissions are
// accepted and queue in FIFO-by-slot order (state "queued").
//
// Results stream: every completed grid cell is an event. The status
// endpoint serves live partial coverage with elapsed time, rate and
// ETA while a grid runs, and GET /campaigns/{id}/events follows the
// per-cell result stream as NDJSON. With -datadir every submitted spec
// and completed cell is journaled (internal/jobstore): a restarted
// twmd recovers its jobs, replays the journaled cells, and re-simulates
// only the remainder — the recovered canonical aggregate is
// byte-identical to an uninterrupted run. On SIGINT/SIGTERM the server
// stops accepting submissions, drains running jobs for up to -drain,
// and flushes the journal before exiting.
//
// With -datadir the daemon also maintains the indexed result
// warehouse (internal/warehouse) next to the journals: every settled
// job's cell results are indexed under their grid dimensions, and
// GET /campaigns/query serves dimension- and job-range-filtered reads
// from the index without replaying a single WAL. The index is a
// disposable view — startup reconciles it against the journal set and
// rebuilds it from the WALs whenever it cannot be trusted; -warehouse=false
// turns the whole subsystem off.
//
// With -cluster the daemon stops simulating locally and becomes the
// coordinator of a worker fleet: each submitted campaign's cells are
// leased out over POST /cluster/lease to twmw worker daemons, kept
// alive by heartbeats, requeued with backoff when a worker dies, and
// folded back through the same aggregator/journal/event path — the
// canonical aggregate is byte-identical to a local run regardless of
// worker placement or failures. Evicting, canceling, or draining a
// job revokes its outstanding leases: the workers' next renew or
// complete answers "gone" and they stop simulating dead cells.
//
// Specs may carry a "pipeline" block (see campaign.PipelineSpec) to
// run the diagnosis-and-repair yield stage per fault; results then
// include the yield section — fault-class histogram, repairability
// rate, post-ECC escape rate, spare utilization — in both the
// canonical JSON aggregate and the text report.
//
// Cells simulate on the reference-trace fast path (one fault-free
// reference per cell, shared across its fault population); a spec may
// set "naive": true to force the one-shot per-fault loop for
// debugging. The canonical aggregate is byte-identical either way.
//
// API (all bodies JSON):
//
//	POST   /campaigns            submit a campaign.Spec, returns {id}
//	GET    /campaigns            list all campaigns with status
//	GET    /campaigns/query      indexed result queries: filter by grid
//	                             dimensions (test, width, words, scheme,
//	                             mode) and job range (min_job, max_job),
//	                             paged via limit/page_token; served from
//	                             the result warehouse (internal/warehouse)
//	                             without replaying any WAL
//	GET    /campaigns/{id}       poll status, live partial coverage,
//	                             elapsed/rate/ETA
//	GET    /campaigns/{id}/events    NDJSON stream of per-cell results
//	GET    /campaigns/{id}/results   fetch the aggregate (canonical
//	                             JSON; ?format=text for the table)
//	GET    /campaigns/{id}/trace     the job's span timeline as NDJSON:
//	                             submit, dispatch, leases, and the
//	                             worker/cell spans shipped back by the
//	                             fleet (internal/tracing)
//	POST   /campaigns/{id}/cancel    cancel a running campaign
//	DELETE /campaigns/{id}       cancel (if running) and evict the job,
//	                             freeing its results and journal
//	GET    /healthz              liveness probe
//	GET    /metrics              Prometheus text exposition (internal/obs)
//	GET    /debug/runtime        JSON runtime snapshot (goroutines, heap,
//	                             full registry dump)
//	GET    /debug/traces         recent traces from the process span
//	                             ring, NDJSON (filter by trace, job,
//	                             error, min_dur, limit)
//	GET    /debug/pprof/...      net/http/pprof profiling surface
//
// Every request runs under a tracing span (W3C traceparent in,
// continued across coordinator leases and worker execution);
// -trace-sample and -trace-slow tune what the span ring retains.
//
// Logs are structured (log/slog): every record carries component=twmd
// plus job/lease attributes where applicable — and trace/span ids
// when logged under a traced context; -log-format selects text or
// json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/cluster"
	"twmarch/internal/jobstore"
	"twmarch/internal/obs"
	"twmarch/internal/tracing"
	"twmarch/internal/warehouse"
)

// jobCollectorCap bounds the spans a single job's timeline retains for
// GET /campaigns/{id}/trace. Generous relative to the per-completion
// ship cap: a long campaign's early cells stay on the timeline until
// the cap, then the collector counts drops instead of growing.
const jobCollectorCap = 4096

// configureTracing installs the process-wide tracer from the -trace-*
// flags (shared verbatim by twmd and twmw). A zero or negative sample
// rate means "head-sample nothing" — spans then survive only through
// the tail-keep rules (errored, or slower than slow) — which Options
// expresses as a negative rate (zero is its "default to 1" sentinel).
func configureTracing(sample float64, slow time.Duration) {
	if sample <= 0 {
		sample = -1
	}
	tracing.Configure(tracing.Options{Sample: sample, Slow: slow})
}

// Per-job rate gauges: the one source of truth for cells_per_sec and
// eta_ns — published from the engine's Progress, read back by both the
// status endpoint and /metrics scrapes (via the registry's OnGather
// hook), and deleted when the job is evicted.
var (
	metJobRate = obs.NewGauge("twm_job_cells_per_sec",
		"live simulation rate per job, in grid cells per second", "job")
	metJobETA = obs.NewGauge("twm_job_eta_ns",
		"estimated remaining run time per job, in nanoseconds", "job")
	metJobsByState = obs.NewGauge("twm_jobs",
		"jobs in the server's table by state", "state")
)

func main() {
	fs := flag.NewFlagSet("twmd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	once := fs.Bool("once", false, "run one campaign from -spec and exit")
	specPath := fs.String("spec", "", "campaign spec file (JSON) for -once")
	asJSON := fs.Bool("json", false, "with -once, print canonical JSON instead of the text report")
	workers := fs.Int("workers", 0, "default worker count when the spec leaves it 0 (0 = GOMAXPROCS)")
	maxJobs := fs.Int("maxjobs", 2, "campaigns run concurrently; submissions beyond this queue")
	datadir := fs.String("datadir", "", "durable job journal directory; empty = in-memory only")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for draining running jobs")
	clusterMode := fs.Bool("cluster", false, "dispatch campaign cells to twmw workers over /cluster instead of simulating locally")
	leaseTTL := fs.Duration("lease-ttl", 15*time.Second, "with -cluster, how long a leased cell lives without a worker heartbeat before it requeues")
	chaosMode := fs.Bool("chaos", false, "with -cluster, expose the /cluster/chaos fault-injection surface (soak harnesses only; never in production)")
	useWarehouse := fs.Bool("warehouse", true, "with -datadir, maintain the indexed result warehouse behind GET /campaigns/query")
	addrFile := fs.String("addr-file", "", "write the resolved listen address to this file once serving (lets harnesses use -addr 127.0.0.1:0)")
	logFormat := fs.String("log-format", obs.LogText, "structured log format: text or json")
	traceSample := fs.Float64("trace-sample", 1, "tracing head-sample rate in [0,1]; 0 keeps only errored and slow spans")
	traceSlow := fs.Duration("trace-slow", 250*time.Millisecond, "tracing tail-keep threshold: unsampled spans at least this slow are retained anyway")
	fs.Parse(os.Args[1:])

	configureTracing(*traceSample, *traceSlow)
	logger := obs.NewLogger(os.Stderr, *logFormat, "twmd", nil)
	eng := campaign.Engine{Workers: *workers}
	if *once {
		if err := runOnce(context.Background(), eng, *specPath, *asJSON, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "twmd:", err)
			os.Exit(1)
		}
		return
	}
	var store *jobstore.Store
	if *datadir != "" {
		var err error
		store, err = jobstore.Open(*datadir)
		if err != nil {
			logger.Error("open jobstore failed", "datadir", *datadir, "err", err)
			os.Exit(1)
		}
	}
	var coord *cluster.Coordinator
	if *clusterMode {
		coord = cluster.New(cluster.Options{LeaseTTL: *leaseTTL, Chaos: *chaosMode})
	}
	var wh *warehouse.Warehouse
	if store != nil && *useWarehouse {
		wh = openWarehouse(*datadir, store, logger)
	}
	h := newServerWith(eng, *maxJobs, store, coord, wh, logger)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		// Bounds the whole request read including the body, so a
		// trickled POST cannot hold a handler goroutine open.
		ReadTimeout: 30 * time.Second,
		// The events stream rolls its own write deadline forward per
		// line; this bounds everything else.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	// The spawn-under-test helper: a harness that started us on :0
	// learns the real port from the addr file (written atomically so a
	// poller never reads a partial address).
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, ln.Addr().String()); err != nil {
			logger.Error("write addr file failed", "path", *addrFile, "err", err)
			os.Exit(1)
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Info("serving campaign API", "addr", ln.Addr().String(), "cluster", *clusterMode, "maxjobs", *maxJobs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	logger.Info("signal received, draining jobs", "budget", *drain)
	h.beginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drained := h.drainJobs(dctx, settleBudget(*drain))
	sctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	srv.Shutdown(sctx)
	if drained {
		logger.Info("all jobs drained, exiting")
	} else {
		logger.Warn("drain budget exhausted; interrupted jobs left journaled for recovery")
	}
	if wh != nil {
		if err := wh.Close(); err != nil {
			logger.Warn("warehouse close failed; next start rebuilds", "err", err)
		}
	}
}

// writeAddrFile publishes the resolved listen address via temp file
// and rename, so harness pollers never observe a torn write.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runOnce is the scriptable batch mode: load a spec, run it to
// completion, write the aggregate.
func runOnce(ctx context.Context, eng campaign.Engine, specPath string, asJSON bool, out io.Writer) error {
	if specPath == "" {
		return fmt.Errorf("-once needs -spec file.json")
	}
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	var spec campaign.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("parse %s: %v", specPath, err)
	}
	agg, err := eng.Run(ctx, spec)
	if err != nil {
		return err
	}
	return campaign.WriteAggregate(out, agg, asJSON)
}

// Job states reported by the status endpoints.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// job is one submitted campaign and its lifecycle. The aggregator and
// hub are live while the engine runs: status polls snapshot the
// aggregator, event subscribers follow the hub.
type job struct {
	id      string
	spec    campaign.Spec
	cells   int
	prog    *campaign.Progress
	agg     *campaign.Aggregator
	hub     *hub
	journal *jobstore.Journal // nil without -datadir
	// wh indexes the job's terminal results for /campaigns/query; nil
	// when the warehouse is disabled.
	wh     *warehouse.Warehouse
	cancel context.CancelFunc
	done   chan struct{}
	log    *slog.Logger
	// span is the job's root tracing span (finished in settle) and col
	// the collector every span on the job's trace lands in — including
	// the worker-side spans the coordinator records — backing
	// GET /campaigns/{id}/trace. Both nil for recovered terminal jobs.
	span *tracing.Span
	col  *tracing.Collector
	// abandoned marks a drain-interrupted job: the runner closes the
	// journal without a terminal marker so a restart resumes it.
	abandoned atomic.Bool

	mu       sync.Mutex
	state    string
	errMsg   string
	aggFinal *campaign.Aggregate
	started  time.Time
	finished time.Time
}

// Status is the wire form of a job's state. While the job runs, the
// coverage block is the live partial fold and the timing block is
// derived from the engine's Progress timestamps.
type Status struct {
	ID       string  `json:"id"`
	Name     string  `json:"name,omitempty"`
	State    string  `json:"state"`
	Cells    int     `json:"cells"`
	Done     int64   `json:"done"`
	Fraction float64 `json:"fraction"`
	Error    string  `json:"error,omitempty"`
	// ElapsedNS is wall-clock time since submission (until finish for
	// terminal states).
	ElapsedNS int64 `json:"elapsed_ns"`
	// RunElapsedNS is wall-clock time since the engine picked the job
	// up (zero while queued, frozen at completion); CellsPerSec and
	// ETANS are the simulation rate and the estimated remaining time,
	// both derived from the engine's Progress timestamps. Cells
	// recovered from the journal count toward Done but not the rate.
	RunElapsedNS int64   `json:"run_elapsed_ns,omitempty"`
	CellsPerSec  float64 `json:"cells_per_sec,omitempty"`
	ETANS        int64   `json:"eta_ns,omitempty"`
	// Faults, Detected, Coverage and CellErrors are the live partial
	// aggregate: the fold over the cells completed so far.
	Faults     int     `json:"faults"`
	Detected   int     `json:"detected"`
	Coverage   float64 `json:"coverage"`
	CellErrors int     `json:"cell_errors,omitempty"`
}

// logger returns the job's logger, or a silent one for jobs built
// outside the server paths (tests).
func (j *job) logger() *slog.Logger {
	if j.log != nil {
		return j.log
	}
	return obs.NopLogger()
}

// publishRates pushes the job's live simulation rate and ETA into its
// registry gauge series and returns them. The gauges are the single
// source of truth for these numbers: the status endpoint reads the
// same series a /metrics scrape exports.
func (j *job) publishRates() (rate, eta *obs.Gauge) {
	rate = metJobRate.With(j.id)
	eta = metJobETA.With(j.id)
	rate.Set(j.prog.Rate())
	eta.Set(float64(j.prog.ETA().Nanoseconds()))
	return rate, eta
}

func (j *job) status() Status {
	rate, eta := j.publishRates()
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	st := j.agg.Stats()
	// The aggregator leads Progress for a journal-recovered job that
	// hasn't re-entered the engine yet; take whichever is ahead.
	done := j.prog.Done()
	if n := int64(st.Cells); n > done {
		done = n
	}
	fraction := 1.0
	if j.cells > 0 {
		fraction = float64(done) / float64(j.cells)
	}
	// Coverage of an empty fold is undefined, not perfect: report 0
	// until the first faults land so pollers see a monotonic value
	// instead of 1.0 regressing to the real number.
	coverage := 0.0
	if st.Faults > 0 {
		coverage = st.CoverageFraction()
	}
	return Status{
		ID:           j.id,
		Name:         j.spec.Name,
		State:        j.state,
		Cells:        j.cells,
		Done:         done,
		Fraction:     fraction,
		Error:        j.errMsg,
		ElapsedNS:    end.Sub(j.started).Nanoseconds(),
		RunElapsedNS: j.prog.Elapsed().Nanoseconds(),
		CellsPerSec:  rate.Value(),
		ETANS:        int64(eta.Value()),
		Faults:       st.Faults,
		Detected:     st.Detected,
		Coverage:     coverage,
		CellErrors:   st.Errors,
	}
}

// server owns the job table and implements the HTTP API.
type server struct {
	engine campaign.Engine
	mux    *http.ServeMux
	// handler is the instrumented mux (request counters and latency
	// histograms per normalized route); ServeHTTP delegates to it.
	handler http.Handler
	log     *slog.Logger
	store   *jobstore.Store // nil without -datadir
	// coord dispatches cells to remote workers instead of running the
	// engine locally; nil without -cluster.
	coord *cluster.Coordinator
	// wh is the indexed result warehouse behind GET /campaigns/query;
	// nil when disabled (no -datadir, -warehouse=false, or rebuild
	// failure).
	wh *warehouse.Warehouse
	// slots bounds concurrently running campaigns; a submitted job
	// stays queued until it acquires a slot.
	slots chan struct{}
	// draining rejects new submissions during graceful shutdown.
	draining atomic.Bool

	mu   sync.Mutex
	seq  int
	jobs map[string]*job
}

func newServer(eng campaign.Engine, maxJobs int, store *jobstore.Store, coord *cluster.Coordinator, logger *slog.Logger) *server {
	return newServerWith(eng, maxJobs, store, coord, nil, logger)
}

// newServerWith is newServer plus the result warehouse: wh is
// reconciled against the journal set before recovery resumes any job,
// so index repairs never race live ingest.
func newServerWith(eng campaign.Engine, maxJobs int, store *jobstore.Store, coord *cluster.Coordinator, wh *warehouse.Warehouse, logger *slog.Logger) *server {
	if maxJobs < 1 {
		maxJobs = 1
	}
	if logger == nil {
		logger = obs.NopLogger()
	}
	s := &server{
		engine: eng,
		log:    logger,
		store:  store,
		coord:  coord,
		wh:     wh,
		jobs:   make(map[string]*job),
		mux:    http.NewServeMux(),
		slots:  make(chan struct{}, maxJobs),
	}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("/campaigns", s.campaigns)
	s.mux.HandleFunc("/campaigns/", s.campaign)
	if coord != nil {
		s.mux.Handle("/cluster/", coord)
	}
	obs.Mount(s.mux, obs.Default())
	registerGatherHook(s)
	s.handler = obs.Instrument("twmd", s.mux, routePattern)
	s.reconcileWarehouse()
	s.recover()
	return s
}

// activeServer is the server whose derived gauges the registry's
// gather hook publishes. A process runs one server; tests that build
// several must not leave a stale one republishing evicted series, so
// the hook always follows the newest.
var (
	gatherHookOnce sync.Once
	activeServer   atomic.Pointer[server]
)

// registerGatherHook makes s the publisher behind the default
// registry's gather hook (registered once per process).
func registerGatherHook(s *server) {
	activeServer.Store(s)
	gatherHookOnce.Do(func() {
		obs.Default().OnGather(func() {
			if cur := activeServer.Load(); cur != nil {
				cur.publishMetrics()
			}
		})
	})
}

// routePattern collapses request paths into a bounded route-label set
// so per-job ids and probe paths can't blow up /metrics cardinality.
func routePattern(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/campaigns":
		return "/campaigns"
	case strings.HasPrefix(p, "/campaigns/"):
		rest := strings.Trim(strings.TrimPrefix(p, "/campaigns/"), "/")
		if rest == "query" {
			return "/campaigns/query"
		}
		_, sub, _ := strings.Cut(rest, "/")
		switch sub {
		case "results", "cancel", "events", "trace":
			return "/campaigns/{id}/" + sub
		case "":
			return "/campaigns/{id}"
		}
		return "/campaigns/{id}/other"
	case strings.HasPrefix(p, "/cluster/"):
		switch p {
		case "/cluster/lease", "/cluster/renew", "/cluster/complete", "/cluster/workers", "/cluster/chaos":
			return p
		}
		return "/cluster/other"
	case strings.HasPrefix(p, "/debug/"):
		return "/debug/*"
	case p == "/metrics", p == "/healthz":
		return p
	}
	return "other"
}

// publishMetrics refreshes the derived gauges — per-job rate and ETA
// plus the jobs-by-state breakdown — so every /metrics scrape reads
// current values. Registered as the default registry's gather hook.
func (s *server) publishMetrics() {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	counts := map[string]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0,
		StateFailed: 0, StateCanceled: 0,
	}
	for _, j := range jobs {
		j.publishRates()
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	for st, n := range counts {
		metJobsByState.With(st).Set(float64(n))
	}
}

// recover reloads journaled jobs from the store: terminal jobs are
// restored (a complete "done" journal rebuilds its aggregate from the
// WAL — byte-identical, since cell results are pure functions of the
// spec), interrupted jobs re-enter the run queue with their journaled
// cells pre-folded so only the remainder simulates.
func (s *server) recover() {
	if s.store == nil {
		return
	}
	jobs, err := s.store.Recover()
	if err != nil {
		s.log.Error("journal recovery failed", "err", err)
		return
	}
	// Bump the id sequence past every directory in the store — also
	// the unrecoverable ones Recover skips — so a fresh submission can
	// never collide with a leftover journal directory and end up
	// running unjournaled.
	if ids, err := s.store.IDs(); err == nil {
		for _, id := range ids {
			if n, ok := strings.CutPrefix(id, "c"); ok {
				if v, err := strconv.Atoi(n); err == nil && v > s.seq {
					s.seq = v
				}
			}
		}
	}
	for _, rec := range jobs {
		j := &job{
			id:      rec.ID,
			spec:    rec.Spec,
			cells:   rec.Spec.CellCount(),
			prog:    &campaign.Progress{},
			agg:     campaign.NewAggregator(rec.Spec),
			hub:     newHub(),
			wh:      s.wh,
			done:    make(chan struct{}),
			log:     s.log.With("job", rec.ID),
			state:   StateQueued,
			started: time.Now(),
		}
		// Replay the WAL through the same validation the engine would
		// apply: only clean results matching the spec's own expansion
		// count. A corrupt entry is dropped and its cell re-simulates;
		// so is any errored cell — a deterministic failure reproduces
		// identically, and a cancellation artifact from an older binary
		// must not be resurrected as a real result.
		cells, err := rec.Spec.Cells()
		if err != nil {
			j.state, j.errMsg = StateFailed, fmt.Sprintf("journal recovery: %v", err)
			j.finished = time.Now()
			close(j.done)
			j.hub.close()
			s.jobs[j.id] = j
			continue
		}
		var seeded []campaign.CellResult
		for _, r := range rec.Done {
			if r.Err == "" && r.Index >= 0 && r.Index < len(cells) && r.Cell == cells[r.Index] && !j.agg.Has(r.Index) {
				j.agg.Add(r)
				seeded = append(seeded, r)
			}
		}
		j.hub.seed(seeded)
		s.jobs[j.id] = j

		if rec.State == StateDone && j.agg.Added() == len(cells) {
			j.state = StateDone
			j.aggFinal = j.agg.Snapshot()
			j.finished = time.Now()
			close(j.done)
			j.hub.close()
			continue
		}
		if rec.State == StateFailed || rec.State == StateCanceled {
			j.state, j.errMsg = rec.State, rec.Err
			j.finished = time.Now()
			close(j.done)
			j.hub.close()
			continue
		}
		// Interrupted (or a "done" marker with an incomplete WAL):
		// resume. Reopen the journal so newly simulated cells append.
		jn, err := s.store.Reopen(rec.ID)
		if err != nil {
			j.logger().Warn("reopen journal failed, job will run unjournaled", "err", err)
		} else {
			j.journal = jn
		}
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		// Resume the job's journaled trace: the new root span is a remote
		// child of the pre-restart one, so the submitter's trace id spans
		// the crash. A missing or corrupt trace file starts a fresh trace.
		j.col = tracing.NewCollector(jobCollectorCap)
		ctx = tracing.ContextWithCollector(ctx, j.col)
		parent, _ := tracing.ParseTraceParent(rec.TraceParent)
		ctx, j.span = tracing.StartRemote(ctx, "job", tracing.KindInternal, parent)
		j.span.SetAttr("job", j.id)
		j.span.SetAttr("resumed", "true")
		j.logger().Info("recovered job, resuming", "journaled", len(seeded), "cells", len(cells))
		s.run(ctx, j)
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// campaigns handles the collection: POST submits, GET lists.
func (s *server) campaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		s.mu.Lock()
		list := make([]*job, 0, len(s.jobs))
		for _, j := range s.jobs {
			list = append(list, j)
		}
		s.mu.Unlock()
		out := make([]Status, 0, len(list))
		for _, j := range list {
			out = append(out, j.status())
		}
		// Job ids are c1, c2, ... — sort by submission order.
		sort.Slice(out, func(a, b int) bool {
			if len(out[a].ID) != len(out[b].ID) {
				return len(out[a].ID) < len(out[b].ID)
			}
			return out[a].ID < out[b].ID
		})
		writeJSON(w, http.StatusOK, out)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining for shutdown")
		return
	}
	var spec campaign.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "parse spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		spec:    spec,
		cells:   spec.CellCount(),
		prog:    &campaign.Progress{},
		agg:     campaign.NewAggregator(spec),
		hub:     newHub(),
		wh:      s.wh,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		started: time.Now(),
	}
	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("c%d", s.seq)
	s.jobs[j.id] = j
	s.mu.Unlock()
	j.log = s.log.With("job", j.id)

	if s.store != nil {
		jn, err := s.store.Create(j.id, spec)
		if err != nil {
			j.logger().Warn("journal create failed, job will run unjournaled", "err", err)
		} else {
			j.journal = jn
		}
	}
	// The job's root span continues the submitter's trace: the request
	// context carries the Instrument server span (itself continuing any
	// inbound traceparent), and the job span becomes its child even
	// though the job outlives the request. The traceparent is journaled
	// so a restart resumes the same trace.
	j.col = tracing.NewCollector(jobCollectorCap)
	ctx = tracing.ContextWithCollector(ctx, j.col)
	var remote tracing.SpanContext
	if sp := tracing.SpanFromContext(r.Context()); sp != nil {
		remote = sp.Context()
	}
	ctx, j.span = tracing.StartRemote(ctx, "job", tracing.KindInternal, remote)
	j.span.SetAttr("job", j.id)
	j.span.SetAttr("cells", strconv.Itoa(j.cells))
	if s.store != nil {
		if err := s.store.WriteTrace(j.id, j.span.Context().TraceParent()); err != nil {
			j.logger().Warn("journal trace write failed; a restart starts a fresh trace", "err", err)
		}
	}
	s.run(ctx, j)

	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":      j.id,
		"cells":   j.cells,
		"status":  path.Join("/campaigns", j.id),
		"results": path.Join("/campaigns", j.id, "results"),
		"events":  path.Join("/campaigns", j.id, "events"),
		"trace":   path.Join("/campaigns", j.id, "trace"),
	})
}

// run starts the job's runner goroutine: wait for a slot, stream the
// campaign into the job's aggregator, hub and journal, and settle the
// terminal state.
func (s *server) run(ctx context.Context, j *job) {
	go func() {
		defer close(j.done)
		select {
		case s.slots <- struct{}{}:
			defer func() { <-s.slots }()
		case <-ctx.Done():
			j.settle(StateCanceled, ctx.Err().Error(), nil)
			return
		}
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()
		sinks := []campaign.Sink{j.hub}
		if j.journal != nil {
			sinks = append(sinks, j.journal)
		}
		if j.wh != nil {
			// Stream completed cells into the warehouse as they finish,
			// so a settled job's results are queryable without a backfill
			// scan. The journal sink precedes this one: a cell is always
			// WAL-durable before it is index-visible.
			sinks = append(sinks, j.wh.Ingester(j.id))
		}
		var agg *campaign.Aggregate
		var err error
		if s.coord != nil {
			// Cluster mode: lease the cells to workers. Completions flow
			// through the same aggregator, hub, and journal; scheduling
			// events land in the journal's dispatch side log.
			var events func(cluster.Event)
			if j.journal != nil {
				events = func(ev cluster.Event) { j.journal.Dispatch(ev) }
			}
			agg, err = s.coord.Dispatch(ctx, j.id, j.spec, j.prog, j.agg, events, sinks...)
		} else {
			agg, err = s.engine.Stream(ctx, j.spec, j.prog, j.agg, sinks...)
		}
		if j.journal != nil {
			if jerr := j.journal.Err(); jerr != nil {
				j.logger().Warn("journal write error", "err", jerr)
			}
		}
		switch {
		case err == nil:
			j.settle(StateDone, "", agg)
		case ctx.Err() != nil:
			j.settle(StateCanceled, err.Error(), nil)
		default:
			j.settle(StateFailed, err.Error(), nil)
		}
	}()
}

// settle records the job's terminal state, closes the event stream,
// and finishes the journal. An abandoned (drain-interrupted) job skips
// the terminal marker so a restart resumes it from the WAL.
func (j *job) settle(state, errMsg string, agg *campaign.Aggregate) {
	j.mu.Lock()
	j.finished = time.Now()
	j.state, j.errMsg, j.aggFinal = state, errMsg, agg
	j.mu.Unlock()
	switch state {
	case StateDone:
		j.span.SetStatus(tracing.StatusOK)
	case StateCanceled:
		j.span.SetStatus(tracing.StatusCanceled)
	default:
		j.span.SetStatus(tracing.StatusError)
	}
	j.span.Finish()
	j.hub.close()
	if errMsg != "" {
		j.logger().Warn("job settled", "state", state, "err", errMsg)
	} else {
		j.logger().Info("job settled", "state", state)
	}
	if j.journal != nil {
		var err error
		if j.abandoned.Load() {
			err = j.journal.Close()
		} else {
			err = j.journal.Finish(state, errMsg)
		}
		if err != nil {
			j.logger().Warn("journal finish failed", "err", err)
		}
	}
	// Index after the journal's terminal marker is down: if the process
	// dies between the two, startup reconcile replays this step from
	// the journal instead of trusting a half-updated index.
	if !j.abandoned.Load() {
		j.indexSettled(state, agg)
	}
}

// beginDrain stops accepting submissions.
func (s *server) beginDrain() { s.draining.Store(true) }

// settleBudget bounds the post-cancel wait of drainJobs: a fraction of
// the drain budget, so shutdown overruns the operator's -drain by a
// proportionate amount at worst, never a fixed constant larger than
// the budget itself.
func settleBudget(drain time.Duration) time.Duration {
	settle := drain / 5
	if settle < 200*time.Millisecond {
		settle = 200 * time.Millisecond
	}
	if settle > 5*time.Second {
		settle = 5 * time.Second
	}
	return settle
}

// drainJobs waits for running jobs to finish within ctx's budget.
// Queued jobs are abandoned immediately (they have simulated nothing);
// when the budget runs out, running jobs are abandoned too — canceled
// without a terminal journal marker, so a journaled restart resumes
// them from their completed cells, then given settle to observe the
// cancellation. Reports whether every job reached a terminal state by
// itself.
func (s *server) drainJobs(ctx context.Context, settle time.Duration) bool {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		queued := j.state == StateQueued
		j.mu.Unlock()
		if queued && j.cancel != nil {
			j.abandoned.Store(true)
			j.cancel()
		}
	}
	drained := true
	for _, j := range jobs {
		select {
		case <-j.done:
		case <-ctx.Done():
			drained = false
		}
		if !drained {
			break
		}
	}
	if !drained {
		for _, j := range jobs {
			j.abandoned.Store(true)
			if j.cancel != nil {
				j.cancel()
			}
		}
		// Cancellation latency is bounded (the engine observes ctx
		// between fault batches); give it a moment to settle.
		deadline := time.After(settle)
		for _, j := range jobs {
			select {
			case <-j.done:
			case <-deadline:
				return false
			}
		}
	}
	return drained
}

// campaign routes /campaigns/{id}[/results|/cancel|/events].
func (s *server) campaign(w http.ResponseWriter, r *http.Request) {
	rest := strings.Trim(strings.TrimPrefix(r.URL.Path, "/campaigns/"), "/")
	id, sub, _ := strings.Cut(rest, "/")
	// "query" can never collide with a job id: ids are always c<seq>.
	if id == "query" && sub == "" {
		s.query(w, r)
		return
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, "no campaign %q", id)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, j.status())
	case sub == "cancel" && r.Method == http.MethodPost:
		// A recovered terminal job has no runner; cancel is a no-op.
		if j.cancel != nil {
			j.cancel()
		}
		<-j.done // state is terminal once the runner goroutine exits
		writeJSON(w, http.StatusOK, j.status())
	case sub == "" && r.Method == http.MethodDelete:
		// Evict: cancel if still running, then drop the job (and its
		// aggregate and journal) so a long-lived daemon doesn't
		// accumulate results.
		if j.cancel != nil {
			j.cancel()
		}
		<-j.done
		// Snapshot the status before dropping the gauge series: status()
		// republishes them.
		st := j.status()
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		// Drop the evicted job's gauge series so a long-lived daemon's
		// exposition stays bounded by live jobs.
		metJobRate.Delete(id)
		metJobETA.Delete(id)
		if s.store != nil {
			if err := s.store.Remove(id); err != nil {
				s.log.Warn("evict journal failed", "job", id, "err", err)
			}
		}
		// Drop the evicted job's index entries too, so /campaigns/query
		// never serves results whose journal is gone.
		if s.wh != nil {
			if n, err := s.wh.RemoveJobID(id); err != nil {
				s.log.Warn("evict warehouse entries failed; reconcile will repair", "job", id, "err", err)
			} else if n > 0 {
				if err := s.wh.Checkpoint(); err != nil {
					s.log.Warn("warehouse checkpoint failed", "err", err)
				}
			}
		}
		writeJSON(w, http.StatusOK, st)
	case sub == "results" && r.Method == http.MethodGet:
		s.results(w, r, j)
	case sub == "trace" && r.Method == http.MethodGet:
		s.trace(w, j)
	case sub == "events":
		s.events(w, r, j)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "%s /campaigns/%s/%s not supported", r.Method, id, sub)
	}
}

// trace serves GET /campaigns/{id}/trace: the job's span timeline —
// submit, dispatch, every lease, and the worker/cell spans shipped
// back in completions — as NDJSON in start order. Live jobs show the
// timeline so far; recovered terminal jobs (no collector) are empty.
func (s *server) trace(w http.ResponseWriter, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if j.col == nil {
		return
	}
	tracing.Default().ExportNDJSON(w, j.col.Snapshot())
}

func (s *server) results(w http.ResponseWriter, r *http.Request, j *job) {
	j.mu.Lock()
	state, agg, errMsg := j.state, j.aggFinal, j.errMsg
	j.mu.Unlock()
	switch state {
	case StateQueued, StateRunning:
		writeErr(w, http.StatusConflict, "campaign %s still %s (%d/%d cells)",
			j.id, state, j.prog.Done(), j.prog.Total())
	case StateDone:
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, agg.Render())
			return
		}
		b, err := agg.Canonical()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "encode aggregate: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(b, '\n'))
	default:
		writeErr(w, http.StatusGone, "campaign %s %s: %s", j.id, state, errMsg)
	}
}
