// Command twmd is the campaign job server: an HTTP/JSON daemon that
// runs test campaigns (grids over march tests, word widths, memory
// sizes, schemes and detection modes) on the internal/campaign engine.
//
//	twmd -addr :8080            serve the job API
//	twmd -once -spec c.json     run one campaign and print the report
//	twmd -once -spec c.json -json   ... printing canonical JSON instead
//
// At most -maxjobs campaigns run concurrently; further submissions are
// accepted and queue in FIFO-by-slot order (state "queued").
//
// Specs may carry a "pipeline" block (see campaign.PipelineSpec) to
// run the diagnosis-and-repair yield stage per fault; results then
// include the yield section — fault-class histogram, repairability
// rate, post-ECC escape rate, spare utilization — in both the
// canonical JSON aggregate and the text report.
//
// Cells simulate on the reference-trace fast path (one fault-free
// reference per cell, shared across its fault population); a spec may
// set "naive": true to force the one-shot per-fault loop for
// debugging. The canonical aggregate is byte-identical either way.
//
// API (all bodies JSON):
//
//	POST   /campaigns            submit a campaign.Spec, returns {id}
//	GET    /campaigns            list all campaigns with status
//	GET    /campaigns/{id}       poll status and progress
//	GET    /campaigns/{id}/results   fetch the aggregate (canonical
//	                             JSON; ?format=text for the table)
//	POST   /campaigns/{id}/cancel    cancel a running campaign
//	DELETE /campaigns/{id}       cancel (if running) and evict the job,
//	                             freeing its results
//	GET    /healthz              liveness probe
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"twmarch/internal/campaign"
)

func main() {
	fs := flag.NewFlagSet("twmd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	once := fs.Bool("once", false, "run one campaign from -spec and exit")
	specPath := fs.String("spec", "", "campaign spec file (JSON) for -once")
	asJSON := fs.Bool("json", false, "with -once, print canonical JSON instead of the text report")
	workers := fs.Int("workers", 0, "default worker count when the spec leaves it 0 (0 = GOMAXPROCS)")
	maxJobs := fs.Int("maxjobs", 2, "campaigns run concurrently; submissions beyond this queue")
	fs.Parse(os.Args[1:])

	eng := campaign.Engine{Workers: *workers}
	if *once {
		if err := runOnce(context.Background(), eng, *specPath, *asJSON, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "twmd:", err)
			os.Exit(1)
		}
		return
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(eng, *maxJobs),
		ReadHeaderTimeout: 10 * time.Second,
		// Bounds the whole request read including the body, so a
		// trickled POST cannot hold a handler goroutine open.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	log.Printf("twmd: serving campaign API on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}

// runOnce is the scriptable batch mode: load a spec, run it to
// completion, write the aggregate.
func runOnce(ctx context.Context, eng campaign.Engine, specPath string, asJSON bool, out io.Writer) error {
	if specPath == "" {
		return fmt.Errorf("-once needs -spec file.json")
	}
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	var spec campaign.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("parse %s: %v", specPath, err)
	}
	agg, err := eng.Run(ctx, spec)
	if err != nil {
		return err
	}
	return campaign.WriteAggregate(out, agg, asJSON)
}

// Job states reported by the status endpoints.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// job is one submitted campaign and its lifecycle.
type job struct {
	id     string
	spec   campaign.Spec
	cells  int
	prog   *campaign.Progress
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	state    string
	errMsg   string
	agg      *campaign.Aggregate
	started  time.Time
	finished time.Time
}

// Status is the wire form of a job's state.
type Status struct {
	ID       string  `json:"id"`
	Name     string  `json:"name,omitempty"`
	State    string  `json:"state"`
	Cells    int     `json:"cells"`
	Done     int64   `json:"done"`
	Fraction float64 `json:"fraction"`
	Error    string  `json:"error,omitempty"`
	// ElapsedNS is wall-clock time since submission (until finish for
	// terminal states).
	ElapsedNS int64 `json:"elapsed_ns"`
}

func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	fraction := j.prog.Fraction()
	if j.state == StateQueued {
		// Progress.Fraction reads 1 while the total is still unset;
		// a queued job hasn't done anything.
		fraction = 0
	}
	return Status{
		ID:        j.id,
		Name:      j.spec.Name,
		State:     j.state,
		Cells:     j.cells,
		Done:      j.prog.Done(),
		Fraction:  fraction,
		Error:     j.errMsg,
		ElapsedNS: end.Sub(j.started).Nanoseconds(),
	}
}

// server owns the job table and implements the HTTP API.
type server struct {
	engine campaign.Engine
	mux    *http.ServeMux
	// slots bounds concurrently running campaigns; a submitted job
	// stays queued until it acquires a slot.
	slots chan struct{}

	mu   sync.Mutex
	seq  int
	jobs map[string]*job
}

func newServer(eng campaign.Engine, maxJobs int) *server {
	if maxJobs < 1 {
		maxJobs = 1
	}
	s := &server{
		engine: eng,
		jobs:   make(map[string]*job),
		mux:    http.NewServeMux(),
		slots:  make(chan struct{}, maxJobs),
	}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("/campaigns", s.campaigns)
	s.mux.HandleFunc("/campaigns/", s.campaign)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// campaigns handles the collection: POST submits, GET lists.
func (s *server) campaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		s.mu.Lock()
		list := make([]*job, 0, len(s.jobs))
		for _, j := range s.jobs {
			list = append(list, j)
		}
		s.mu.Unlock()
		out := make([]Status, 0, len(list))
		for _, j := range list {
			out = append(out, j.status())
		}
		// Job ids are c1, c2, ... — sort by submission order.
		sort.Slice(out, func(a, b int) bool {
			if len(out[a].ID) != len(out[b].ID) {
				return len(out[a].ID) < len(out[b].ID)
			}
			return out[a].ID < out[b].ID
		})
		writeJSON(w, http.StatusOK, out)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "parse spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		spec:    spec,
		cells:   spec.CellCount(),
		prog:    &campaign.Progress{},
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		started: time.Now(),
	}
	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("c%d", s.seq)
	s.jobs[j.id] = j
	s.mu.Unlock()

	go func() {
		defer close(j.done)
		select {
		case s.slots <- struct{}{}:
			defer func() { <-s.slots }()
		case <-ctx.Done():
			j.mu.Lock()
			defer j.mu.Unlock()
			j.finished = time.Now()
			j.state, j.errMsg = StateCanceled, ctx.Err().Error()
			return
		}
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()
		agg, err := s.engine.RunProgress(ctx, spec, j.prog)
		j.mu.Lock()
		defer j.mu.Unlock()
		j.finished = time.Now()
		switch {
		case err == nil:
			j.state, j.agg = StateDone, agg
		case ctx.Err() != nil:
			j.state, j.errMsg = StateCanceled, err.Error()
		default:
			j.state, j.errMsg = StateFailed, err.Error()
		}
	}()

	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":      j.id,
		"cells":   j.cells,
		"status":  path.Join("/campaigns", j.id),
		"results": path.Join("/campaigns", j.id, "results"),
	})
}

// campaign routes /campaigns/{id}[/results|/cancel].
func (s *server) campaign(w http.ResponseWriter, r *http.Request) {
	rest := strings.Trim(strings.TrimPrefix(r.URL.Path, "/campaigns/"), "/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, "no campaign %q", id)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, j.status())
	case sub == "cancel" && r.Method == http.MethodPost:
		j.cancel()
		<-j.done // state is terminal once the runner goroutine exits
		writeJSON(w, http.StatusOK, j.status())
	case sub == "" && r.Method == http.MethodDelete:
		// Evict: cancel if still running, then drop the job (and its
		// aggregate) so a long-lived daemon doesn't accumulate results.
		j.cancel()
		<-j.done
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, j.status())
	case sub == "results" && r.Method == http.MethodGet:
		s.results(w, r, j)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "%s /campaigns/%s/%s not supported", r.Method, id, sub)
	}
}

func (s *server) results(w http.ResponseWriter, r *http.Request, j *job) {
	j.mu.Lock()
	state, agg, errMsg := j.state, j.agg, j.errMsg
	j.mu.Unlock()
	switch state {
	case StateQueued, StateRunning:
		writeErr(w, http.StatusConflict, "campaign %s still %s (%d/%d cells)",
			j.id, state, j.prog.Done(), j.prog.Total())
	case StateDone:
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, agg.Render())
			return
		}
		b, err := agg.Canonical()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, "encode aggregate: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(b, '\n'))
	default:
		writeErr(w, http.StatusGone, "campaign %s %s: %s", j.id, state, errMsg)
	}
}
