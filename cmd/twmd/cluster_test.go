package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/cluster"
)

// clusterWorkers launches n in-process twmw-equivalent workers against
// the server and returns a stop function.
func clusterWorkers(t *testing.T, base string, n int) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		w := &cluster.Worker{
			Client:   &cluster.Client{Base: base, Worker: fmt.Sprintf("tw%d", i), Backoff: time.Millisecond},
			Parallel: 2,
			Poll:     2 * time.Millisecond,
		}
		go func() {
			defer func() { done <- struct{}{} }()
			w.Run(ctx)
		}()
	}
	return func() {
		cancel()
		for i := 0; i < n; i++ {
			<-done
		}
	}
}

// TestClusterEndToEnd is the acceptance e2e: a campaign submitted to a
// -cluster server is dispatched across three workers — one of which is
// killed mid-run so its cell expires and requeues — and the served
// aggregate is byte-identical to a single-process Engine.Stream run.
// Scheduling events land in the job's dispatch journal. CI runs this
// under -race.
func TestClusterEndToEnd(t *testing.T) {
	dir := t.TempDir()
	coord := cluster.New(cluster.Options{
		LeaseTTL:     200 * time.Millisecond,
		RetryBackoff: 10 * time.Millisecond,
		IdleRetry:    5 * time.Millisecond,
	})
	s := newServer(campaign.Engine{}, 2, openStore(t, dir), coord, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A deadbeat worker grabs the first lease and dies without renewing:
	// the cell must requeue to the healthy fleet.
	sub := postSpec(t, ts, smallSpec())
	id, _ := sub["id"].(string)
	deadbeat := &cluster.Client{Base: ts.URL, Worker: "deadbeat", Backoff: time.Millisecond}
	for {
		g, err := deadbeat.Lease(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if g.Status == cluster.StatusLease {
			break
		}
		time.Sleep(time.Millisecond)
	}

	stop := clusterWorkers(t, ts.URL, 3)
	defer stop()
	waitState(t, ts, id, StateDone)

	// Byte-identity against the single-process streaming engine.
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Engine{}.Stream(context.Background(), smallSpec(), &campaign.Progress{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wb)+"\n" {
		t.Errorf("cluster aggregate diverges from Engine.Stream:\n%.2000s", got)
	}

	// The event stream still delivers each cell exactly once.
	events := readEvents(t, ts, id)
	if len(events) != smallSpec().CellCount() {
		t.Fatalf("stream delivered %d events, want %d", len(events), smallSpec().CellCount())
	}
	seen := make(map[int]bool)
	for _, r := range events {
		if seen[r.Index] {
			t.Fatalf("cell %d streamed twice", r.Index)
		}
		seen[r.Index] = true
	}

	// The dispatch journal recorded the lease lifecycle, including the
	// deadbeat's expiry and requeue.
	lines, err := openStore(t, dir).DispatchLog(id)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, raw := range lines {
		var ev cluster.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("bad dispatch event %s: %v", raw, err)
		}
		counts[ev.Kind]++
	}
	if counts[cluster.EventComplete] != smallSpec().CellCount() {
		t.Errorf("dispatch log has %d completes, want %d (log: %v)", counts[cluster.EventComplete], smallSpec().CellCount(), counts)
	}
	if counts[cluster.EventExpire] == 0 || counts[cluster.EventRequeue] == 0 {
		t.Errorf("dispatch log missing the deadbeat's expire/requeue: %v", counts)
	}

	// The worker heartbeat listing is served.
	resp, err = http.Get(ts.URL + "/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	var workers []cluster.WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&workers); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(workers) < 4 { // 3 honest + the deadbeat
		t.Errorf("worker listing has %d rows: %+v", len(workers), workers)
	}
}

// TestClusterEvictionRevokesLeases pins satellite 1: evicting a job
// (and canceling one) revokes its outstanding leases — the worker's
// next renew and complete answer gone, so it stops simulating dead
// cells.
func TestClusterEvictionRevokesLeases(t *testing.T) {
	coord := cluster.New(cluster.Options{LeaseTTL: 10 * time.Second, IdleRetry: 2 * time.Millisecond})
	s := newServer(campaign.Engine{}, 2, nil, coord, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	lease := func(cl *cluster.Client) *cluster.LeaseGrant {
		t.Helper()
		for {
			g, err := cl.Lease(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if g.Status == cluster.StatusLease {
				return g
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Evict path.
	sub := postSpec(t, ts, smallSpec())
	id, _ := sub["id"].(string)
	cl := &cluster.Client{Base: ts.URL, Worker: "held", Backoff: time.Millisecond}
	g := lease(cl)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st, err := cl.Renew(context.Background(), g.Job, g.LeaseID); err != nil || st != cluster.StatusGone {
		t.Errorf("renew after evict: %q, %v (want gone)", st, err)
	}
	if st, err := cl.Complete(context.Background(), g.Job, g.LeaseID, campaign.CellResult{Cell: *g.Cell}, nil); err != nil || st != cluster.StatusGone {
		t.Errorf("complete after evict: %q, %v (want gone)", st, err)
	}

	// Cancel path.
	sub2 := postSpec(t, ts, smallSpec())
	id2, _ := sub2["id"].(string)
	g2 := lease(cl)
	resp, err = http.Post(ts.URL+"/campaigns/"+id2+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts, id2, StateCanceled)
	if st, err := cl.Renew(context.Background(), g2.Job, g2.LeaseID); err != nil || st != cluster.StatusGone {
		t.Errorf("renew after cancel: %q, %v (want gone)", st, err)
	}
}

// TestClusterDrainRevokesLeases pins the -drain half of satellite 1: a
// graceful shutdown whose budget expires abandons the running cluster
// job without a terminal marker (journaled for resume) and revokes its
// leases.
func TestClusterDrainRevokesLeases(t *testing.T) {
	dir := t.TempDir()
	coord := cluster.New(cluster.Options{LeaseTTL: 10 * time.Second, IdleRetry: 2 * time.Millisecond})
	s := newServer(campaign.Engine{}, 1, openStore(t, dir), coord, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	sub := postSpec(t, ts, smallSpec())
	id, _ := sub["id"].(string)
	cl := &cluster.Client{Base: ts.URL, Worker: "drained", Backoff: time.Millisecond}
	var g *cluster.LeaseGrant
	for {
		var err error
		g, err = cl.Lease(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if g.Status == cluster.StatusLease {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// No workers complete anything: the drain budget expires and the
	// job is abandoned.
	crash(t, s)
	if st, err := cl.Renew(context.Background(), g.Job, g.LeaseID); err != nil || st != cluster.StatusGone {
		t.Errorf("renew after drain: %q, %v (want gone)", st, err)
	}

	// The abandoned job has no terminal marker — it resumes on restart.
	jobs, err := openStore(t, dir).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != id || jobs[0].State != "" {
		t.Fatalf("journal after drain: %+v", jobs)
	}
}
