package main

import (
	"errors"
	"log/slog"
	"net/http"
	"path/filepath"
	"strconv"

	"twmarch/internal/campaign"
	"twmarch/internal/jobstore"
	"twmarch/internal/warehouse"
)

// warehouseFile is the index file name inside -datadir.
const warehouseFile = "warehouse.idx"

// openWarehouse opens (or builds) the result warehouse next to the
// job journals. A dirty or torn index — a crash mid-ingest, a format
// change — is rebuilt from the WALs, which stay the source of truth;
// the index is always a disposable view. Returns nil (and serves 503
// on the query surface) only when even the rebuild fails.
func openWarehouse(datadir string, store *jobstore.Store, logger *slog.Logger) *warehouse.Warehouse {
	path := filepath.Join(datadir, warehouseFile)
	wh, err := warehouse.Open(path, warehouse.Options{})
	if err == nil {
		return wh
	}
	if !errors.Is(err, warehouse.ErrNeedsRebuild) {
		logger.Error("open warehouse failed", "path", path, "err", err)
		return nil
	}
	logger.Warn("warehouse index not trustworthy, rebuilding from WALs", "path", path, "err", err)
	wh, err = warehouse.RebuildFromWAL(path, warehouse.Options{}, store)
	if err != nil {
		logger.Error("warehouse rebuild failed, queries disabled", "path", path, "err", err)
		return nil
	}
	logger.Info("warehouse rebuilt", "path", path, "jobs", wh.NumJobs())
	return wh
}

// reconcileWarehouse audits the index against the journal set and
// logs what it repaired — the startup step that catches drift from a
// crash between a WAL write and its index insert (or an evict that
// died between removing the journal and the index entries). Runs
// before any recovered job resumes, so repairs never race live
// ingest.
func (s *server) reconcileWarehouse() {
	if s.wh == nil || s.store == nil {
		return
	}
	stats, err := s.wh.Reconcile(s.store)
	if err != nil {
		s.log.Error("warehouse reconcile failed", "err", err)
		return
	}
	for _, id := range stats.Removed {
		s.log.Warn("warehouse drift: dropped index entries without a done journal", "job", id)
	}
	for _, id := range stats.Repaired {
		s.log.Warn("warehouse drift: re-indexed job from its journal", "job", id)
	}
	if len(stats.Removed) > 0 || len(stats.Repaired) > 0 {
		if err := s.wh.Checkpoint(); err != nil {
			s.log.Warn("warehouse checkpoint failed", "err", err)
		}
	}
}

// indexSettled folds a job's terminal state into the warehouse: a
// done job's full result set backfills (covering recovery-seeded
// cells that never streamed through the ingest sink), any other
// terminal state drops the job's entries. Each settle checkpoints, so
// the index never trails the journal set by more than the job being
// settled.
func (j *job) indexSettled(state string, agg *campaign.Aggregate) {
	if j.wh == nil {
		return
	}
	var err error
	if state == StateDone && agg != nil {
		err = j.wh.IndexJob(j.id, agg.Cells)
	} else {
		_, err = j.wh.RemoveJobID(j.id)
	}
	if err != nil {
		j.logger().Warn("warehouse index update failed; reconcile will repair", "err", err)
		return
	}
	if err := j.wh.Checkpoint(); err != nil {
		j.logger().Warn("warehouse checkpoint failed", "err", err)
	}
}

// queryRecord is the wire form of one warehouse record.
type queryRecord struct {
	ID       string  `json:"id"`
	Cell     uint32  `json:"cell"`
	Test     string  `json:"test"`
	Width    int     `json:"width"`
	Words    int     `json:"words"`
	Scheme   string  `json:"scheme"`
	Mode     string  `json:"mode"`
	Faults   int     `json:"faults"`
	Detected int     `json:"detected"`
	Coverage float64 `json:"coverage"`
	TCM      int     `json:"tcm"`
	TCP      int     `json:"tcp"`
}

// queryPage is the wire form of one GET /campaigns/query response.
type queryPage struct {
	Results []queryRecord `json:"results"`
	// NextToken pages the scan; pass it back as ?page_token=.
	NextToken string `json:"next_token,omitempty"`
	// Scanned counts index entries examined for this page.
	Scanned int `json:"scanned"`
}

// parseJobParam accepts a job bound as either a twmd id ("c17") or a
// bare sequence number ("17").
func parseJobParam(v string) (uint64, bool) {
	if seq, ok := warehouse.JobSeq(v); ok {
		return seq, true
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// query serves GET /campaigns/query: dimension- and job-range-
// filtered reads over the warehouse index. The handler never touches
// a WAL — every page is index pages only — so its latency is
// independent of how many cells the matching jobs journaled.
func (s *server) query(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if s.wh == nil {
		writeErr(w, http.StatusServiceUnavailable, "result warehouse disabled (start with -datadir, without -warehouse=false)")
		return
	}
	p := r.URL.Query()
	q := warehouse.Query{
		Test:      p.Get("test"),
		Scheme:    p.Get("scheme"),
		Mode:      p.Get("mode"),
		PageToken: p.Get("page_token"),
	}
	for name, dst := range map[string]*int{"width": &q.Width, "words": &q.Words, "limit": &q.Limit} {
		if v := p.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				writeErr(w, http.StatusBadRequest, "bad %s %q", name, v)
				return
			}
			*dst = n
		}
	}
	for name, dst := range map[string]*uint64{"min_job": &q.MinJob, "max_job": &q.MaxJob} {
		if v := p.Get(name); v != "" {
			seq, ok := parseJobParam(v)
			if !ok {
				writeErr(w, http.StatusBadRequest, "bad %s %q", name, v)
				return
			}
			*dst = seq
		}
	}
	res, err := s.wh.Search(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	page := queryPage{Results: make([]queryRecord, 0, len(res.Records)), NextToken: res.NextToken, Scanned: res.Scanned}
	for _, rec := range res.Records {
		qr := queryRecord{
			ID:       warehouse.JobID(rec.Job),
			Cell:     rec.Cell,
			Test:     rec.Dim.Test,
			Width:    rec.Dim.Width,
			Words:    rec.Dim.Words,
			Scheme:   rec.Dim.Scheme,
			Mode:     rec.Dim.Mode,
			Faults:   rec.Faults,
			Detected: rec.Detected,
			TCM:      rec.TCM,
			TCP:      rec.TCP,
		}
		if rec.Faults > 0 {
			qr.Coverage = float64(rec.Detected) / float64(rec.Faults)
		}
		page.Results = append(page.Results, qr)
	}
	writeJSON(w, http.StatusOK, page)
}
