package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"twmarch/internal/campaign"
	"twmarch/internal/jobstore"
)

func openStore(t testing.TB, dir string) *jobstore.Store {
	t.Helper()
	st, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// crash simulates an unclean shutdown: every job is abandoned (no
// terminal journal marker) and its context canceled, like a drain
// whose budget expired immediately.
func crash(t testing.TB, s *server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.beginDrain()
	s.drainJobs(ctx, 2*time.Second)
}

// TestRestartRecovery is the durability acceptance test: a journaled
// job interrupted halfway resumes on a fresh server from the journaled
// cells — only the remainder re-simulates — and its final canonical
// aggregate is byte-identical to an uninterrupted run of the same
// spec.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	// Cells tens of milliseconds each even on the bit-parallel lane
	// path: the crash lands mid-grid with a wide margin on either side.
	spec := smallSpec()
	spec.Name = "durable"
	spec.Widths = []int{4, 8}
	spec.Words = []int{768, 1024}
	spec.Workers = 1

	s1 := newServer(campaign.Engine{}, 1, openStore(t, dir), nil, nil)
	ts1 := httptest.NewServer(s1)
	sub := postSpec(t, ts1, spec)
	id, _ := sub["id"].(string)

	// Let part of the grid land in the journal, then crash.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, ts1, id)
		if st.Done >= 2 {
			break
		}
		if st.State == StateDone || time.Now().After(deadline) {
			t.Fatalf("campaign finished before a mid-run crash could happen: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	crash(t, s1)
	ts1.Close()

	// The journal holds the interrupted job with a partial WAL and no
	// terminal marker.
	jobs, err := openStore(t, dir).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != id || jobs[0].State != "" {
		t.Fatalf("journal after crash: %+v", jobs)
	}
	journaled := len(jobs[0].Done)
	if journaled == 0 || journaled >= spec.CellCount() {
		t.Fatalf("journal holds %d of %d cells, want a strict partial", journaled, spec.CellCount())
	}

	// Restart: the job recovers, reports the journaled cells
	// immediately, resumes, and completes.
	s2 := newServer(campaign.Engine{}, 1, openStore(t, dir), nil, nil)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	st := getStatus(t, ts2, id)
	if st.Done < int64(journaled) {
		t.Fatalf("recovered job reports %d done, journal had %d", st.Done, journaled)
	}
	fin := waitState(t, ts2, id, StateDone)
	if fin.Done != int64(spec.CellCount()) {
		t.Fatalf("recovered job finished with %d/%d cells", fin.Done, spec.CellCount())
	}

	resp, err := http.Get(ts2.URL + "/campaigns/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Engine{}.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wb)+"\n" {
		t.Errorf("recovered aggregate diverges from uninterrupted run:\n%.2000s", got)
	}

	// The resumed job's event stream replays every cell exactly once —
	// journaled and re-simulated alike.
	events := readEvents(t, ts2, id)
	if len(events) != spec.CellCount() {
		t.Fatalf("recovered stream delivered %d events, want %d", len(events), spec.CellCount())
	}
	seen := make(map[int]bool)
	for _, r := range events {
		if seen[r.Index] {
			t.Fatalf("recovered stream repeated cell %d", r.Index)
		}
		seen[r.Index] = true
	}

	// New submissions on the recovered server pick up fresh ids.
	sub2 := postSpec(t, ts2, smallSpec())
	if id2, _ := sub2["id"].(string); id2 == id {
		t.Fatalf("recovered server reused job id %s", id)
	}
}

// TestRecoverySkipsOrphanIDs pins id allocation after a restart: a
// crash-orphaned journal directory (no spec.json, so Recover skips it)
// must still block its id from reuse — otherwise the colliding job
// would silently run unjournaled.
func TestRecoverySkipsOrphanIDs(t *testing.T) {
	dir := t.TempDir()
	if err := os.Mkdir(filepath.Join(dir, "c9"), 0o755); err != nil {
		t.Fatal(err)
	}
	s := newServer(campaign.Engine{}, 2, openStore(t, dir), nil, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	sub := postSpec(t, ts, smallSpec())
	id, _ := sub["id"].(string)
	if id != "c10" {
		t.Fatalf("submission after orphan c9 got id %q, want c10", id)
	}
	waitState(t, ts, id, StateDone)
	jobs, err := openStore(t, dir).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != id || jobs[0].State != StateDone {
		t.Fatalf("new job not journaled: %+v", jobs)
	}
}

// TestRecoverTerminalJobs pins the restart behaviour for finished
// jobs: a completed job is restored as done with its aggregate rebuilt
// from the WAL (byte-identical), and a canceled job keeps its terminal
// state instead of resuming.
func TestRecoverTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	s1 := newServer(campaign.Engine{}, 2, openStore(t, dir), nil, nil)
	ts1 := httptest.NewServer(s1)

	sub := postSpec(t, ts1, smallSpec())
	idDone, _ := sub["id"].(string)
	waitState(t, ts1, idDone, StateDone)
	resp, err := http.Get(ts1.URL + "/campaigns/" + idDone + "/results")
	if err != nil {
		t.Fatal(err)
	}
	want, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}

	// Big enough that the cancel below always lands mid-run, even on
	// the bit-parallel lane path.
	slow := smallSpec()
	slow.Name = "to-cancel"
	slow.Words = []int{512, 768, 1024}
	slow.Widths = []int{16, 32}
	slow.Workers = 1
	sub2 := postSpec(t, ts1, slow)
	idCanceled, _ := sub2["id"].(string)
	resp, err = http.Post(ts1.URL+"/campaigns/"+idCanceled+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts1, idCanceled, StateCanceled)
	ts1.Close()

	s2 := newServer(campaign.Engine{}, 2, openStore(t, dir), nil, nil)
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	// The done job serves its results immediately, byte-identical.
	st := getStatus(t, ts2, idDone)
	if st.State != StateDone {
		t.Fatalf("recovered finished job is %q", st.State)
	}
	resp, err = http.Get(ts2.URL + "/campaigns/" + idDone + "/results")
	if err != nil {
		t.Fatal(err)
	}
	got, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered results returned %s", resp.Status)
	}
	if string(got) != string(want) {
		t.Error("recovered done aggregate diverges from the original")
	}

	// The canceled job stays canceled — no surprise resurrection.
	st = getStatus(t, ts2, idCanceled)
	if st.State != StateCanceled {
		t.Fatalf("recovered canceled job is %q", st.State)
	}

	// Evicting a recovered job removes its journal too.
	req, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/campaigns/"+idDone, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	jobs, err := openStore(t, dir).Recover()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.ID == idDone {
			t.Fatal("evicted job still journaled")
		}
	}
}
