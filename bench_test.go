// Benchmark harness: one benchmark family per table and figure of the
// paper (IDs mirror the paper's artifacts). Each benchmark
// does the work the corresponding artifact reports and attaches the
// headline quantity as a custom metric, so `go test -bench .`
// regenerates the paper's numbers alongside wall-clock costs:
//
//	T1  Table 1   — ATMarch content trace
//	T2  Table 2   — closed-form complexity evaluation
//	T3  Table 3   — generated-test execution across word sizes
//	H1  headline  — 56%/19% totals for March C- at W=32
//	F1a Figure 1a — inter-word state traversal tracking
//	F1b Figure 1b — intra-word pattern condition tracking
//	X1  Sec. 4    — March U worked example (29N at W=8)
//	S5  Sec. 5    — fault-injection coverage campaigns
//	E1–E3         — online interference, signature flow and aliasing,
//	                ablations (extensions beyond the paper's artifacts)
package twmarch_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"twmarch/internal/bistctl"
	"twmarch/internal/campaign"
	"twmarch/internal/cluster"
	"twmarch/internal/complexity"
	"twmarch/internal/core"
	"twmarch/internal/diagnose"
	"twmarch/internal/faults"
	"twmarch/internal/faultsim"
	"twmarch/internal/march"
	"twmarch/internal/memory"
	"twmarch/internal/misr"
	"twmarch/internal/obs"
	"twmarch/internal/statecover"
	"twmarch/internal/symmetric"
	"twmarch/internal/tomt"
	"twmarch/internal/trace"
	"twmarch/internal/tracing"
	"twmarch/internal/word"

	"twmarch/internal/ecc"
)

// BenchmarkTable1Trace regenerates the Table 1 content rows (T1).
func BenchmarkTable1Trace(b *testing.B) {
	res, err := core.TWMTA(march.MustLookup("March U"), 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rows []trace.Row
	for i := 0; i < b.N; i++ {
		rows, err = trace.SymbolicContents(res.ATMarch)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// BenchmarkTable2ClosedForm evaluates the Table 2 formulas (T2).
func BenchmarkTable2ClosedForm(b *testing.B) {
	bm := march.MustLookup("March C-")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range complexity.Schemes() {
			if _, err := complexity.ClosedFormFor(s, bm, 32); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable3 executes the generated transparent tests of every
// Table 3 cell on a 64-word memory; the ops/word metric is the table
// entry (T3).
func BenchmarkTable3(b *testing.B) {
	const words = 64
	for _, testName := range complexity.Table3Tests {
		bm := march.MustLookup(testName)
		for _, width := range complexity.Table3Widths {
			for _, scheme := range complexity.Schemes() {
				name := fmt.Sprintf("%s/W%d/%s", sanitize(testName), width, sanitize(scheme.String()))
				b.Run(name, func(b *testing.B) {
					benchScheme(b, bm, scheme, words, width)
				})
			}
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '[', ']':
			// skip
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func benchScheme(b *testing.B, bm *march.Test, scheme complexity.Scheme, words, width int) {
	cost, err := complexity.Constructive(scheme, bm, width)
	if err != nil {
		b.Fatal(err)
	}
	switch scheme {
	case complexity.Scheme2:
		codec, err := ecc.NewHamming(width, true)
		if err != nil {
			// W=128 data plus SEC-DED check bits exceeds the 128-bit
			// simulator word; the Table 3 entry comes from the closed
			// form (8W·N) which needs no execution.
			b.Skipf("TOMT at W=%d: %v", width, err)
		}
		data := memory.MustNew(words, width)
		data.Randomize(rand.New(rand.NewSource(1)))
		code := memory.MustNew(words, codec.CodewordWidth())
		if err := tomt.EncodeMemory(codec, data, code); err != nil {
			b.Fatal(err)
		}
		runner := tomt.NewRunner(codec)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := runner.Run(code); err != nil {
				b.Fatal(err)
			}
		}
	default:
		var tst *march.Test
		if scheme == complexity.Scheme1 {
			s1, err := core.Scheme1(bm, width)
			if err != nil {
				b.Fatal(err)
			}
			tst = s1.Test
		} else {
			res, err := core.TWMTA(bm, width)
			if err != nil {
				b.Fatal(err)
			}
			tst = res.TWMarch
		}
		mem := memory.MustNew(words, width)
		mem.Randomize(rand.New(rand.NewSource(1)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := march.Run(tst, mem, march.RunOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if res.Detected() {
				b.Fatal("fault-free run mismatched")
			}
		}
	}
	b.ReportMetric(float64(cost.TCM), "TCM_ops/word")
	b.ReportMetric(float64(cost.TCP), "TCP_ops/word")
	b.ReportMetric(float64(cost.Total()), "total_ops/word")
}

// BenchmarkHeadline computes the paper's 56%/19% comparison (H1).
func BenchmarkHeadline(b *testing.B) {
	bm := march.MustLookup("March C-")
	var h complexity.HeadlineResult
	var err error
	for i := 0; i < b.N; i++ {
		h, err = complexity.Headline(bm, 32)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*h.VsScheme1, "pct_vs_scheme1")
	b.ReportMetric(100*h.VsScheme2, "pct_vs_scheme2")
}

// BenchmarkFigure1aStateCoverage tracks the 18-state traversal of a
// word pair under TSMarch (F1a).
func BenchmarkFigure1aStateCoverage(b *testing.B) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 8)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	complete := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem := memory.MustNew(4, 8)
		mem.Randomize(r)
		pc, err := statecover.TrackPair(res.TSMarch, mem,
			statecover.Site{Addr: 0, Bit: 3}, statecover.Site{Addr: 2, Bit: 5})
		if err != nil {
			b.Fatal(err)
		}
		if pc.Complete() {
			complete++
		}
	}
	if complete != b.N {
		b.Fatalf("Figure 1(a) conditions failed in %d/%d runs", b.N-complete, b.N)
	}
}

// BenchmarkFigure1bPatternCoverage tracks the intra-word written/read
// pattern conditions under the full TWMarch (F1b).
func BenchmarkFigure1bPatternCoverage(b *testing.B) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 8)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem := memory.MustNew(2, 8)
		mem.Randomize(r)
		ic, err := statecover.TrackIntraPair(res.TWMarch, mem, 0, 1, 6)
		if err != nil {
			b.Fatal(err)
		}
		total += ic.ConditionsMet()
	}
	b.ReportMetric(float64(total)/float64(b.N), "conditions_met")
}

// BenchmarkSection4MarchU runs the paper's worked example: the
// transformation of March U at W=8 whose result is 29N (X1).
func BenchmarkSection4MarchU(b *testing.B) {
	bm := march.MustLookup("March U")
	var tcm int
	for i := 0; i < b.N; i++ {
		res, err := core.TWMTA(bm, 8)
		if err != nil {
			b.Fatal(err)
		}
		tcm = res.TCM()
	}
	b.ReportMetric(float64(tcm), "TCM_ops/word")
}

// BenchmarkS5Coverage runs the Section 5 fault-injection campaign:
// the complete fault population of a 3x4 memory against TWMarch (S5).
func BenchmarkS5Coverage(b *testing.B) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		b.Fatal(err)
	}
	list := faults.EnumerateAll(3, 4)
	c := faultsim.Campaign{Test: res.TWMarch, Words: 3, Width: 4, Mode: faultsim.DirectCompare, Seed: 1}
	var rep *faultsim.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = faultsim.Run(c, list)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rep.Coverage(), "coverage_pct")
	b.ReportMetric(float64(rep.Total), "faults")
}

// benchDetectsPath runs the S5 campaign workload through one of the
// three simulation paths. The trio below is the speedup headline of
// each tier (naive → scalar reference → bit-parallel lanes); the
// benchmark-regression gate (scripts/benchdiff) tracks all of them so
// a regression in any path — or a shrinking gap — fails CI.
func benchDetectsPath(b *testing.B, naive, noLanes bool) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		b.Fatal(err)
	}
	list := faults.EnumerateAll(3, 4)
	c := faultsim.Campaign{Test: res.TWMarch, Words: 3, Width: 4, Mode: faultsim.DirectCompare, Seed: 1, Naive: naive, NoLanes: noLanes}
	var rep *faultsim.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = faultsim.Run(c, list)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Total), "faults")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(rep.Total), "ns/fault")
}

// BenchmarkDetectsNaive measures the naive one-shot loop: fresh
// memory, re-randomized contents and a full march per fault.
func BenchmarkDetectsNaive(b *testing.B) { benchDetectsPath(b, true, false) }

// BenchmarkDetectsFast measures the scalar reference-trace path —
// one replay per fault against the captured fault-free trace
// (verdict-equivalent by the faultsim equivalence suite).
func BenchmarkDetectsFast(b *testing.B) { benchDetectsPath(b, false, true) }

// BenchmarkDetectLane measures the bit-parallel lane path on the
// identical workload: up to 64 faults packed as bit-planes per replay
// (verdict-equivalent by the lane equivalence suite and fuzzer).
func BenchmarkDetectLane(b *testing.B) { benchDetectsPath(b, false, false) }

// BenchmarkE1OnlineInterference measures the online scheduler under
// tight idle windows (E1).
func BenchmarkE1OnlineInterference(b *testing.B) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 16)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := bistctl.New(res.TWMarch)
	if err != nil {
		b.Fatal(err)
	}
	var last bistctl.OnlineStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem := memory.MustNew(32, 16)
		mem.Randomize(rand.New(rand.NewSource(4)))
		win := &bistctl.GeometricWindows{Mean: 1.2 * float64(ctl.SessionOps()*32), Rng: rand.New(rand.NewSource(5))}
		last, err = bistctl.SimulateOnline(ctl, mem, win, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*last.InterferenceProb(), "interference_pct")
}

// BenchmarkE2SignatureFlow times a full prediction/test/compare BIST
// session (E2).
func BenchmarkE2SignatureFlow(b *testing.B) {
	res, err := core.TWMTA(march.MustLookup("March U"), 32)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := bistctl.New(res.TWMarch)
	if err != nil {
		b.Fatal(err)
	}
	mem := memory.MustNew(256, 32)
	mem.Randomize(rand.New(rand.NewSource(6)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ctl.Run(mem)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Pass {
			b.Fatal("clean memory failed")
		}
	}
	b.ReportMetric(float64(ctl.SessionOps()), "session_ops/word")
}

// BenchmarkE3AblationATMarch quantifies what ATMarch buys: intra-word
// CFid coverage with and without the added test (E3).
func BenchmarkE3AblationATMarch(b *testing.B) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 4)
	if err != nil {
		b.Fatal(err)
	}
	list := faults.EnumerateCFid(2, 4, faults.IntraWordPairs)
	for _, tc := range []struct {
		name string
		test *march.Test
	}{
		{"TSMarchOnly", res.TSMarch},
		{"FullTWMarch", res.TWMarch},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c := faultsim.Campaign{Test: tc.test, Words: 2, Width: 4, Mode: faultsim.DirectCompare, Seed: 7}
			var rep *faultsim.Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = faultsim.Run(c, list)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*rep.Coverage(), "intraCFid_coverage_pct")
		})
	}
}

// BenchmarkTransform measures the transformation itself across widths.
func BenchmarkTransform(b *testing.B) {
	bm := march.MustLookup("March C-")
	for _, width := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("TWMTA/W%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.TWMTA(bm, width); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Scheme1/W%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Scheme1(bm, width); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMISR measures the signature register's compression rate.
func BenchmarkMISR(b *testing.B) {
	for _, width := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("W%d", width), func(b *testing.B) {
			m := misr.MustNew(width)
			v := word.Word{Hi: 0xdeadbeef, Lo: 0x12345678}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Feed(v)
			}
		})
	}
}

// BenchmarkMemory measures the simulator's raw access rate.
func BenchmarkMemory(b *testing.B) {
	mem := memory.MustNew(1024, 32)
	v := word.FromUint64(0xa5a5a5a5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := i & 1023
		mem.Write(addr, v)
		if got := mem.Read(addr); got != v.Mask(32) {
			b.Fatal("readback mismatch")
		}
	}
}

// BenchmarkE4SymmetricSession compares the one-pass symmetric flow
// against the two-pass prediction flow on the same memory (E4).
func BenchmarkE4SymmetricSession(b *testing.B) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 32)
	if err != nil {
		b.Fatal(err)
	}
	sym, err := symmetric.MakeSymmetric(res.TWMarch)
	if err != nil {
		b.Fatal(err)
	}
	mem := memory.MustNew(256, 32)
	mem.Randomize(rand.New(rand.NewSource(7)))
	b.Run("OnePassSymmetric", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := symmetric.Session(sym, mem)
			if err != nil {
				b.Fatal(err)
			}
			if !out.Pass {
				b.Fatal("clean memory failed")
			}
		}
		b.ReportMetric(float64(sym.Ops()), "session_ops/word")
	})
	b.Run("TwoPassPrediction", func(b *testing.B) {
		ctl, err := bistctl.New(res.TWMarch)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			out, err := ctl.Run(mem)
			if err != nil {
				b.Fatal(err)
			}
			if !out.Pass {
				b.Fatal("clean memory failed")
			}
		}
		b.ReportMetric(float64(ctl.SessionOps()), "session_ops/word")
	})
}

// BenchmarkE9Diagnosis times the localize-and-classify pipeline (E9).
func BenchmarkE9Diagnosis(b *testing.B) {
	res, err := core.TWMTA(march.MustLookup("March C-"), 8)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		mem := memory.MustNew(64, 8)
		mem.Randomize(rand.New(rand.NewSource(3)))
		inj := faults.MustInject(mem, faults.StuckAt{Cell: faults.Site{Addr: 31, Bit: 5}, Value: 1})
		rep, err := diagnose.Locate(res.TWMarch, inj)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Class != diagnose.StuckAtSuspect {
			b.Fatal("diagnosis failed")
		}
	}
}

// campaignBenchSpec is the grid both campaign benchmarks run: 4 tests
// × 2 widths × 2 sizes × 2 schemes = 32 cells of fault injection.
func campaignBenchSpec() campaign.Spec {
	return campaign.Spec{
		Name:    "bench",
		Tests:   []string{"MATS", "MATS+", "March C-", "March U"},
		Widths:  []int{2, 4},
		Words:   []int{2, 3},
		Classes: []string{"SAF", "TF"},
		Seed:    1,
	}
}

func benchCampaign(b *testing.B, workers int) {
	spec := campaignBenchSpec()
	spec.Workers = workers
	ctx := context.Background()
	var agg *campaign.Aggregate
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err = campaign.Engine{}.Run(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if agg.Errors != 0 {
			b.Fatalf("%d cells errored", agg.Errors)
		}
	}
	b.ReportMetric(float64(len(agg.Cells)), "cells")
	b.ReportMetric(float64(agg.Faults), "fault_injections")
	b.ReportMetric(100*agg.CoverageFraction(), "coverage_pct")
}

// BenchmarkCampaignSerial runs the campaign grid on one worker — the
// baseline the parallel engine is measured against.
func BenchmarkCampaignSerial(b *testing.B) { benchCampaign(b, 1) }

// BenchmarkCampaignParallel runs the same grid with workers=GOMAXPROCS;
// the per-op speedup over BenchmarkCampaignSerial is the engine's
// scaling headline (the two aggregates are byte-identical, see
// internal/campaign TestParallelMatchesSerial).
func BenchmarkCampaignParallel(b *testing.B) { benchCampaign(b, runtime.GOMAXPROCS(0)) }

// BenchmarkCampaignYield runs the campaign grid with the
// diagnosis-and-repair pipeline enabled: every fault additionally gets
// a full-syndrome diagnostic run, spare allocation and field-ECC
// classification. The per-op overhead versus BenchmarkCampaignParallel
// is the pipeline stage's cost; the custom metrics report the
// campaign's yield headline numbers.
func BenchmarkCampaignYield(b *testing.B) {
	spec := campaignBenchSpec()
	spec.Workers = runtime.GOMAXPROCS(0)
	spec.Pipeline = &campaign.PipelineSpec{
		Enabled:   true,
		SpareRows: 1,
		SpareCols: 1,
		ECC:       campaign.ECCSECDED,
	}
	ctx := context.Background()
	var agg *campaign.Aggregate
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err = campaign.Engine{}.Run(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if agg.Errors != 0 {
			b.Fatalf("%d cells errored", agg.Errors)
		}
	}
	y := agg.YieldTotal
	if y == nil || y.Analyzed == 0 {
		b.Fatal("pipeline produced no yield stats")
	}
	b.ReportMetric(float64(y.Analyzed), "faults_analyzed")
	b.ReportMetric(100*y.RepairabilityRate(), "repairability_pct")
	b.ReportMetric(100*y.PostECCEscapeRate(), "post_ecc_escape_pct")
}

// BenchmarkAggregatorIncremental measures the streaming fold: one
// grid's worth of pre-simulated cell results pushed through the
// incremental Aggregator (Add per cell + final Snapshot) — the per-op
// cost every twmd event and journal replay pays. The simulation itself
// is hoisted out of the loop, so the number is the fold alone.
func BenchmarkAggregatorIncremental(b *testing.B) {
	spec := campaignBenchSpec()
	base, err := campaign.Engine{}.Run(context.Background(), spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := campaign.NewAggregator(spec)
		for _, r := range base.Cells {
			g.Add(r)
		}
		snap := g.Snapshot()
		if snap.Faults != base.Faults || len(snap.Cells) != len(base.Cells) {
			b.Fatal("incremental fold diverged")
		}
	}
	b.ReportMetric(float64(len(base.Cells)), "cells")
}

// BenchmarkClusterDispatch measures the cluster dispatch round trip
// on an in-process loopback: the campaign grid leased over HTTP to
// local workers, simulated, completed, and folded — versus
// BenchmarkCampaignParallel this is the wire + lease-queue overhead
// the coordinator adds per grid. scripts/benchdiff gates it so
// dispatch bookkeeping can't silently regress.
func BenchmarkClusterDispatch(b *testing.B) {
	coord := cluster.New(cluster.Options{IdleRetry: time.Millisecond})
	ts := httptest.NewServer(coord)
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < runtime.GOMAXPROCS(0); i++ {
		w := &cluster.Worker{
			Client:   &cluster.Client{Base: ts.URL, Worker: fmt.Sprintf("bench-w%d", i)},
			Parallel: 1,
			Poll:     time.Millisecond,
		}
		go w.Run(ctx)
	}
	spec := campaignBenchSpec()
	var agg *campaign.Aggregate
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err = coord.Dispatch(ctx, fmt.Sprintf("bench-%d", i), spec, nil, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if agg.Errors != 0 {
			b.Fatalf("%d cells errored", agg.Errors)
		}
	}
	b.ReportMetric(float64(len(agg.Cells)), "cells_dispatched")
	b.ReportMetric(100*agg.CoverageFraction(), "coverage_pct")
}

// BenchmarkE10Characterization times one row of the catalog coverage
// matrix (E10).
func BenchmarkE10Characterization(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		ch, err := faultsim.Characterize([]string{"March C-"}, 4)
		if err != nil {
			b.Fatal(err)
		}
		cov, err = ch.Get("March C-", "CFid")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*cov, "CFid_coverage_pct")
}

// BenchmarkTracingHotPath measures one span lifecycle — start, an
// attr, finish — on the internal/tracing hot path. "sampled" pays the
// full cost including the ring write; "unsampled" is the early-out a
// fleet running -trace-sample 0 takes on every span, the number that
// has to stay negligible for tracing to be safe to leave wired in.
// scripts/benchdiff gates both.
func BenchmarkTracingHotPath(b *testing.B) {
	ctx := context.Background()
	b.Run("sampled", func(b *testing.B) {
		tr := tracing.New(tracing.Options{Sample: 1, Capacity: 1024})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, sp := tr.Start(ctx, "bench", tracing.KindInternal)
			sp.SetAttr("cell", "7")
			sp.Finish()
		}
	})
	b.Run("unsampled", func(b *testing.B) {
		tr := tracing.New(tracing.Options{Sample: -1, Capacity: 1024})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, sp := tr.Start(ctx, "bench", tracing.KindInternal)
			sp.SetAttr("cell", "7")
			sp.Finish()
		}
	})
}

// BenchmarkMetricsHotPath measures the internal/obs instrumentation
// primitives on their hot paths — counter increment, gauge set, and
// histogram observe on pre-resolved series — per iteration, the cost
// every simulated cell now pays. scripts/benchdiff gates it so the
// observability layer can't silently tax the engine.
func BenchmarkMetricsHotPath(b *testing.B) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("bench_ops_total", "bench counter", "kind").With("hot")
	g := reg.Gauge("bench_level", "bench gauge").With()
	h := reg.Histogram("bench_duration_seconds", "bench histogram", nil).With()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr.Inc()
		g.Set(float64(i))
		h.Observe(0.003)
	}
	b.ReportMetric(3, "updates_per_op")
}
