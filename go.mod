module twmarch

go 1.21
